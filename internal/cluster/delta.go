package cluster

import (
	"context"
	"math"

	"xmlclust/internal/parallel"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// This file implements the convergence-aware delta-round engine: cross-round
// memoization that makes late clustering rounds — where almost nothing moves
// — cost almost nothing, while keeping every assignment and representative
// byte-identical to the from-scratch loop.
//
// A DeltaState carries three caches between the rounds of ONE clustering run
// (one sim.Context, one fixed transaction slice, one ReturnRule):
//
//  1. Representative memo: per cluster, the FNV fingerprint of its member
//     transaction indices and the representative computed for exactly that
//     membership. When a cluster's membership is unchanged since its
//     representative was last refined, the cached representative is returned
//     verbatim and the whole rank + generateTreeTuple objective loop is
//     skipped. Reuse is exact by a pure-replay argument: recomputing for the
//     same members under the same context would re-intern identical
//     content-addressed synthetic items (no table change) and re-derive the
//     identical item sequence, so downstream interning order — and therefore
//     every later representative — is unaffected by the skip.
//
//  2. Delta relocation: per document, the (bestJ, bestScore) pair of the
//     previous relocation pass, plus a pointer/byte snapshot of the previous
//     representatives. A cached score is exact (the winning candidate is
//     always evaluated above the branch-and-bound threshold), and it remains
//     the min-index argmax over every UNCHANGED representative: no unchanged
//     rep could beat it last round and none of their scores moved. So only
//     CHANGED representatives are folded over the cached anchor — with the
//     same math.Nextafter threshold and lowest-index tie rule as
//     RelocateOneIndexed — and when the index's upper bounds prove no changed
//     candidate can beat the anchor, the document is skipped outright with
//     zero kernel evaluations (Counters.DocsSkipped). If the cached best rep
//     itself changed, the document falls back to a full indexed scan.
//
//  3. Global-representative memo (collaborative refinement): per cluster,
//     a fingerprint over the contributing (weight, representative items)
//     inputs of ComputeGlobalRepresentative. When every peer re-sent an
//     unchanged representative with an unchanged weight, the merged global
//     representative is reused without re-ranking.
//
// Invalidation contract: a DeltaState is valid for exactly one
// (sim.Context, transaction slice, ReturnRule) triple — callers allocate one
// per run and Reset() it whenever the state it anchors to is replaced
// wholesale (session rollback/epoch change, serve refresh builds a new run
// anyway). Reset drops all three caches, so the next round pays full price
// and re-primes them.
type DeltaState struct {
	k int

	// Layer 1: per-cluster representative memo.
	memoSet []bool
	memoFp  []uint64
	memoRep []*txn.Transaction

	// Layer 3 support: per-cluster global-representative memo.
	gmemoSet []bool
	gmemoFp  []uint64
	gmemoRep []*txn.Transaction

	// Layer 2: previous representatives and per-document relocation cache.
	relocValid bool
	prevReps   []*txn.Transaction
	changed    []bool
	bestJ      []int
	bestScore  []float64

	fpScratch []uint64
}

// NewDeltaState returns a fresh delta cache for a run with k clusters.
func NewDeltaState(k int) *DeltaState {
	return &DeltaState{
		k:        k,
		memoSet:  make([]bool, k),
		memoFp:   make([]uint64, k),
		memoRep:  make([]*txn.Transaction, k),
		gmemoSet: make([]bool, k),
		gmemoFp:  make([]uint64, k),
		gmemoRep: make([]*txn.Transaction, k),
		prevReps: make([]*txn.Transaction, k),
		changed:  make([]bool, k),
	}
}

// Reset invalidates every cache: the next relocation runs the full scan and
// the next representative computations recompute from scratch. Called on
// session rollback and membership epoch changes, where the assignments and
// representatives the caches anchor to are replaced wholesale.
func (d *DeltaState) Reset() {
	for j := 0; j < d.k; j++ {
		d.memoSet[j] = false
		d.memoRep[j] = nil
		d.gmemoSet[j] = false
		d.gmemoRep[j] = nil
		d.prevReps[j] = nil
	}
	d.relocValid = false
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit value into an FNV-1a hash byte by byte.
func fnvMix(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= fnvPrime
	}
	return h
}

// MemberFingerprints hashes each cluster's membership — the ascending
// transaction indices assigned to it — in one pass over the assignment. The
// returned slice is scratch owned by d, valid until the next call.
func (d *DeltaState) MemberFingerprints(assign []int) []uint64 {
	if cap(d.fpScratch) < d.k {
		d.fpScratch = make([]uint64, d.k)
	}
	fps := d.fpScratch[:d.k]
	for j := range fps {
		fps[j] = fnvOffset
	}
	for i, a := range assign {
		if a >= 0 && a < d.k {
			fps[a] = fnvMix(fps[a], uint64(i))
		}
	}
	return fps
}

// LocalRep returns cluster j's representative for the given membership
// fingerprint: the memoized representative when the membership is unchanged
// since it was last computed (counted in Counters.RepsReused), a fresh
// ComputeLocalRepresentative otherwise. members must be exactly the
// membership fp hashes.
func (d *DeltaState) LocalRep(cfg RepConfig, j int, fp uint64, members []*txn.Transaction) *txn.Transaction {
	if d.memoSet[j] && d.memoFp[j] == fp {
		cfg.Ctx.Counters.RepsReused.Add(1)
		return d.memoRep[j]
	}
	rep := ComputeLocalRepresentative(cfg, members)
	d.memoSet[j], d.memoFp[j], d.memoRep[j] = true, fp, rep
	return rep
}

// WeightedRepsFingerprint hashes the inputs of ComputeGlobalRepresentative:
// every contributing (weight, representative item sequence) in slice order,
// with separators so (nil, rep) and (rep, nil) hash differently.
func WeightedRepsFingerprint(reps []WeightedRep) uint64 {
	h := uint64(fnvOffset)
	for _, wr := range reps {
		h = fnvMix(h, ^uint64(0)) // separator
		h = fnvMix(h, uint64(wr.Weight))
		if wr.Rep == nil {
			continue
		}
		for _, id := range wr.Rep.Items {
			h = fnvMix(h, uint64(id))
		}
	}
	return h
}

// GlobalRep returns cluster j's merged global representative for the given
// contributing inputs: memoized when every input (weights and item
// sequences) is unchanged since the last merge (Counters.RepsReused), a
// fresh ComputeGlobalRepresentative otherwise.
func (d *DeltaState) GlobalRep(cfg RepConfig, j int, reps []WeightedRep) *txn.Transaction {
	fp := WeightedRepsFingerprint(reps)
	if d.gmemoSet[j] && d.gmemoFp[j] == fp {
		cfg.Ctx.Counters.RepsReused.Add(1)
		return d.gmemoRep[j]
	}
	rep := ComputeGlobalRepresentative(cfg, reps)
	d.gmemoSet[j], d.gmemoFp[j], d.gmemoRep[j] = true, fp, rep
	return rep
}

// repUnchanged reports whether a representative is byte-identical to its
// previous-round snapshot. The pointer check catches the common cases for
// free: memoized representatives and kept-alive empty-cluster reps are the
// same object across rounds.
func repUnchanged(prev, cur *txn.Transaction) bool {
	switch {
	case prev == cur:
		return true
	case prev == nil || cur == nil:
		return false
	default:
		return prev.Equal(cur)
	}
}

// Relocate is RelocateCtxIndexed with the cross-round document cache: the
// first call (or the first after Reset) runs the full scan while priming the
// per-document (bestJ, bestScore) anchors; later calls evaluate only the
// representatives that changed since the previous call, skipping documents
// outright when the cached anchor provably still wins. Assignments are
// byte-identical to the full scan for any worker count. len(reps) must be
// d's k, and s must be the same transaction slice on every call.
func (d *DeltaState) Relocate(ctx context.Context, cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction, workers int, ix *sim.RepIndex) ([]int, error) {
	if len(reps) != d.k {
		// Defensive: a mismatched rep set invalidates every anchor.
		d.Reset()
	}
	assign := make([]int, len(s))
	if !d.relocValid || len(d.bestJ) != len(s) {
		if cap(d.bestJ) < len(s) {
			d.bestJ = make([]int, len(s))
			d.bestScore = make([]float64, len(s))
		}
		d.bestJ = d.bestJ[:len(s)]
		d.bestScore = d.bestScore[:len(s)]
		if err := d.fullPass(ctx, cx, s, reps, workers, ix, assign); err != nil {
			return nil, err
		}
		d.snapshot(reps)
		d.relocValid = true
		return assign, nil
	}

	nChanged := 0
	for j := range reps {
		c := !repUnchanged(d.prevReps[j], reps[j])
		d.changed[j] = c
		if c {
			nChanged++
		}
	}
	if nChanged == 0 {
		// Nothing to re-evaluate anywhere: every cached anchor is the exact
		// argmax over an unchanged representative set. This is the steady
		// state of the within-round fixpoint loop and of converged sessions.
		copy(assign, d.bestJ)
		cx.Counters.DocsSkipped.Add(int64(len(s)))
		return assign, nil
	}

	nw := parallel.WorkerCount(workers, len(s))
	scratches := make([]*sim.Scratch, nw)
	var queries []*sim.RepQuery
	indexed := ix != nil && ix.Enabled()
	if indexed {
		queries = make([]*sim.RepQuery, nw)
	}
	skipped := make([]int64, nw)
	err := parallel.ForCtxWorkers(ctx, workers, len(s), func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = sim.NewScratch()
			scratches[w] = sc
		}
		var rq *sim.RepQuery
		if queries != nil {
			rq = queries[w]
			if rq == nil {
				rq = sim.NewRepQuery()
				queries[w] = rq
			}
		}
		j, v, skip := d.relocateOneDelta(cx, s[i], reps, ix, rq, sc, d.bestJ[i], d.bestScore[i])
		d.bestJ[i], d.bestScore[i] = j, v
		assign[i] = j
		if skip {
			skipped[w]++
		}
	})
	if err != nil {
		d.relocValid = false // partial cache updates are unusable
		return nil, err
	}
	var nSkip int64
	for _, c := range skipped {
		nSkip += c
	}
	cx.Counters.DocsSkipped.Add(nSkip)
	d.snapshot(reps)
	return assign, nil
}

// fullPass runs the plain indexed relocation while recording every
// document's (bestJ, bestScore) anchor.
func (d *DeltaState) fullPass(ctx context.Context, cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction, workers int, ix *sim.RepIndex, assign []int) error {
	nw := parallel.WorkerCount(workers, len(s))
	scratches := make([]*sim.Scratch, nw)
	var queries []*sim.RepQuery
	if ix != nil && ix.Enabled() {
		queries = make([]*sim.RepQuery, nw)
	}
	return parallel.ForCtxWorkers(ctx, workers, len(s), func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = sim.NewScratch()
			scratches[w] = sc
		}
		var rq *sim.RepQuery
		if queries != nil {
			rq = queries[w]
			if rq == nil {
				rq = sim.NewRepQuery()
				queries[w] = rq
			}
		}
		j, v := RelocateOneIndexed(cx, s[i], reps, ix, rq, sc)
		d.bestJ[i], d.bestScore[i] = j, v
		assign[i] = j
	})
}

// snapshot records the representative set the per-document anchors were
// computed against. Representatives are immutable between rounds, so pointer
// copies suffice.
func (d *DeltaState) snapshot(reps []*txn.Transaction) {
	if len(d.prevReps) != len(reps) {
		d.prevReps = make([]*txn.Transaction, len(reps))
		d.changed = make([]bool, len(reps))
	}
	copy(d.prevReps, reps)
}

// relocateOneDelta relocates one document given its previous-round anchor
// (bestJ0, best0) and d.changed flags for the current reps. It returns the
// new (cluster, score) plus whether the document was decided without a
// single kernel evaluation (a delta skip).
//
// Exactness: best0 is the exact min-index argmax over the previous reps. If
// reps[bestJ0] is unchanged (or bestJ0 is the trash cluster, best0 = 0), no
// unchanged rep can beat or lower-index-tie the anchor — their scores did
// not move and the previous argmax already ruled them out. Folding only the
// changed reps over the anchor with RelocateOneIndexed's threshold and tie
// discipline therefore reproduces the full scan's result byte for byte. If
// reps[bestJ0] itself changed, the anchor is void and the document runs a
// full indexed scan.
func (d *DeltaState) relocateOneDelta(cx *sim.Context, tr *txn.Transaction, reps []*txn.Transaction, ix *sim.RepIndex, rq *sim.RepQuery, sc *sim.Scratch, bestJ0 int, best0 float64) (int, float64, bool) {
	if bestJ0 != TrashCluster && d.changed[bestJ0] {
		j, v := RelocateOneIndexed(cx, tr, reps, ix, rq, sc)
		return j, v, false
	}
	best, bestJ := best0, bestJ0
	evaluated := 0
	if ix != nil && ix.Enabled() {
		n := ix.Candidates(tr, rq)
		for c := 0; c < n; c++ {
			j, ub := rq.Candidate(c)
			if ub < best || (ub == best && j > bestJ) {
				break
			}
			if !d.changed[j] {
				continue // its cached score already lost to the anchor
			}
			v := cx.TransactionsAtLeast(tr, reps[j], math.Nextafter(best, math.Inf(-1)), sc)
			evaluated++
			if v > best {
				best, bestJ = v, j
			} else if v == best && j < bestJ {
				bestJ = j
			}
		}
		cx.Counters.IndexCandidates.Add(int64(evaluated))
		cx.Counters.IndexSkipped.Add(int64(ix.Active() - evaluated))
		return bestJ, best, evaluated == 0
	}
	for j, rep := range reps {
		if !d.changed[j] || rep == nil || rep.Len() == 0 {
			continue
		}
		v := cx.TransactionsAtLeast(tr, rep, math.Nextafter(best, math.Inf(-1)), sc)
		evaluated++
		if v > best {
			best, bestJ = v, j
		} else if v == best && j < bestJ {
			bestJ = j
		}
	}
	return bestJ, best, evaluated == 0
}
