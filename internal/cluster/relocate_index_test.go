package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// tieHeavyCorpus generates a randomized corpus engineered for similarity
// ties: documents are drawn from a handful of templates over a tiny tag and
// word vocabulary, so many (document, representative) pairs score exactly
// equal and the lowest-index tie rule is exercised constantly — the
// adversarial shape for a reordered candidate scan.
func tieHeavyCorpus(t testing.TB, n int, seed int64) *txn.Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tags := [][2]string{{"paper", "writer"}, {"report", "editor"}, {"paper", "editor"}}
	words := []string{"alpha", "beta", "gamma", "delta"}
	var trees []*xmltree.Tree
	for i := 0; i < n; i++ {
		tg := tags[rng.Intn(len(tags))]
		w1 := words[rng.Intn(len(words))]
		w2 := words[rng.Intn(len(words))]
		doc := fmt.Sprintf(`<db><%s key="d%d"><%s>%s %s</%s><venue>%s</venue></%s></db>`,
			tg[0], i, tg[1], w1, w2, tg[1], words[rng.Intn(len(words))], tg[0])
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	corpus := txn.Build(trees, txn.BuildOptions{})
	weighting.Apply(corpus)
	return corpus
}

// indexParamsGrid covers every regime of the representative index: tag-only
// qualification (f ≥ γ), term-only (1−f ≥ γ), both-channel AND (γ above
// each individually), the exact f = γ boundary, γ = 0 (index disabled, flat
// fallback) and an unreachable γ (no candidates at all).
var indexParamsGrid = []sim.Params{
	{F: 0.5, Gamma: 0.6}, // AND regime: needs tag AND term sharing
	{F: 0.5, Gamma: 0.4}, // tag or term alone qualifies
	{F: 0.5, Gamma: 0.9}, // high-γ AND regime
	{F: 1, Gamma: 0.7},   // structure only
	{F: 0, Gamma: 0.4},   // content only
	{F: 0.6, Gamma: 0.6}, // f = γ boundary (tagQ inclusive edge)
	{F: 0.3, Gamma: 0.7}, // termQ false, tagQ false, bothQ true
	{F: 0.5, Gamma: 0},   // index disabled: flat fallback
	{F: 0.5, Gamma: 1},   // γ = 1 edge
}

// TestRelocateIndexEquivalence pins the index-guided relocation
// byte-identical to the flat scan — assignment AND winning similarity —
// per document, across the regime grid, on both the structured two-topic
// fixture and a randomized tie-heavy corpus, against raw initial and
// refined synthetic representatives, for workers ∈ {1, 4}.
func TestRelocateIndexEquivalence(t *testing.T) {
	corpora := map[string]*txn.Corpus{
		"twoTopic": twoTopicDocs(t, 10),
		"tieHeavy": tieHeavyCorpus(t, 60, 17),
	}
	for name, corpus := range corpora {
		s := corpus.Transactions
		for _, p := range indexParamsGrid {
			cx := sim.NewContext(corpus, p)
			rng := rand.New(rand.NewSource(31))
			initial := SelectInitial(s, 6, rng)
			cl := XKMeans(cx, s, Config{K: 6, MaxIter: 3, Seed: 31, Workers: 1})
			for ri, reps := range [][]*txn.Transaction{initial, cl.Reps} {
				ix := sim.NewRepIndex()
				ix.Build(cx, reps)
				sc := sim.NewScratch()
				rq := sim.NewRepQuery()
				for i, tr := range s {
					wantJ, wantV := RelocateOne(cx, tr, reps, sc)
					gotJ, gotV := RelocateOneIndexed(cx, tr, reps, ix, rq, sc)
					if gotJ != wantJ || gotV != wantV {
						t.Fatalf("%s params %+v reps#%d doc %d: indexed (%d, %v) != flat (%d, %v)",
							name, p, ri, i, gotJ, gotV, wantJ, wantV)
					}
				}
				want := RelocateWorkers(cx, s, reps, 1)
				for _, workers := range []int{1, 4} {
					got, err := RelocateCtxIndexed(nil, cx, s, reps, workers, ix)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s params %+v reps#%d workers %d: indexed assignment diverges at %d: %d != %d",
								name, p, ri, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestRelocateIndexCounters pins the work accounting: per document the
// evaluated candidates and the skipped representatives sum to exactly the
// active (non-nil, non-empty) representative count.
func TestRelocateIndexCounters(t *testing.T) {
	corpus := tieHeavyCorpus(t, 40, 3)
	s := corpus.Transactions
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	cl := XKMeans(cx, s, Config{K: 5, MaxIter: 3, Seed: 7, Workers: 1})
	ix := sim.NewRepIndex()
	ix.Build(cx, cl.Reps)
	if !ix.Enabled() {
		t.Fatal("index unexpectedly disabled")
	}
	cand0 := cx.Counters.IndexCandidates.Load()
	skip0 := cx.Counters.IndexSkipped.Load()
	if _, err := RelocateCtxIndexed(nil, cx, s, cl.Reps, 4, ix); err != nil {
		t.Fatal(err)
	}
	cand := cx.Counters.IndexCandidates.Load() - cand0
	skip := cx.Counters.IndexSkipped.Load() - skip0
	if total := cand + skip; total != int64(ix.Active())*int64(len(s)) {
		t.Fatalf("candidates %d + skipped %d = %d, want active %d × docs %d = %d",
			cand, skip, total, ix.Active(), len(s), int64(ix.Active())*int64(len(s)))
	}
	if cand <= 0 {
		t.Fatal("no candidates evaluated — relocation cannot have assigned anything")
	}
}

// TestXKMeansIndexEquivalence runs the full clustering loop with the
// representative index on and off and requires byte-identical assignments
// AND representatives (item id sequences, not just set equality) for
// workers ∈ {1, 4}.
func TestXKMeansIndexEquivalence(t *testing.T) {
	corpus := tieHeavyCorpus(t, 50, 23)
	s := corpus.Transactions
	for _, p := range []sim.Params{{F: 0.5, Gamma: 0.6}, {F: 0.5, Gamma: 0.3}, {F: 1, Gamma: 0.7}} {
		cx := sim.NewContext(corpus, p)
		flat := XKMeans(cx, s, Config{K: 5, MaxIter: 5, Seed: 11, Workers: 1})
		for _, workers := range []int{1, 4} {
			indexed := XKMeans(cx, s, Config{K: 5, MaxIter: 5, Seed: 11, Workers: workers, IndexReps: true})
			if !assignEqual(indexed.Assign, flat.Assign) {
				t.Fatalf("params %+v workers %d: indexed assignments diverge from flat", p, workers)
			}
			if len(indexed.Reps) != len(flat.Reps) {
				t.Fatalf("params %+v workers %d: rep count %d != %d", p, workers, len(indexed.Reps), len(flat.Reps))
			}
			for j := range flat.Reps {
				a, b := indexed.Reps[j], flat.Reps[j]
				switch {
				case a == nil && b == nil:
					continue
				case a == nil || b == nil:
					t.Fatalf("params %+v workers %d: rep %d nil-ness differs", p, workers, j)
				}
				if len(a.Items) != len(b.Items) {
					t.Fatalf("params %+v workers %d: rep %d length %d != %d", p, workers, j, len(a.Items), len(b.Items))
				}
				for x := range a.Items {
					if a.Items[x] != b.Items[x] {
						t.Fatalf("params %+v workers %d: rep %d item %d: %d != %d",
							p, workers, j, x, a.Items[x], b.Items[x])
					}
				}
			}
		}
	}
}

// TestRelocateOneIndexedZeroAllocWarm extends the CI allocation guards to
// the indexed assignment path: with a warm scratch, query state and index,
// relocating one document through the index performs zero heap allocations.
// A companion check pins the per-round index rebuild to zero steady-state
// allocations too (all slabs and maps are reused).
func TestRelocateOneIndexedZeroAllocWarm(t *testing.T) {
	corpus := twoTopicDocs(t, 12)
	s := corpus.Transactions
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	cl := XKMeans(cx, s, Config{K: 4, MaxIter: 3, Seed: 3, Workers: 1})
	reps := cl.Reps
	ix := sim.NewRepIndex()
	ix.Build(cx, reps)
	if !ix.Enabled() {
		t.Fatal("index unexpectedly disabled")
	}
	sc := sim.NewScratch()
	rq := sim.NewRepQuery()
	for _, tr := range s {
		RelocateOneIndexed(cx, tr, reps, ix, rq, sc)
	}
	if avg := testing.AllocsPerRun(200, func() {
		RelocateOneIndexed(cx, s[0], reps, ix, rq, sc)
	}); avg != 0 {
		t.Errorf("warm RelocateOneIndexed allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		ix.Build(cx, reps)
	}); avg != 0 {
		t.Errorf("warm index rebuild allocates %.2f/op, want 0", avg)
	}
}
