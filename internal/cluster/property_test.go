package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// randomItemTable builds an item table with nPaths paths and nItems raw
// items carrying small random vectors.
func randomItemTable(rng *rand.Rand, nPaths, nItems int) (*txn.ItemTable, []txn.ItemID) {
	paths := xmltree.NewPathTable()
	pids := make([]xmltree.PathID, nPaths)
	labels := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < nPaths; i++ {
		p := xmltree.Path{"root", labels[i%len(labels)], labels[(i/len(labels))%len(labels)], "S"}
		pids[i] = paths.Intern(p)
	}
	items := txn.NewItemTable(paths)
	var ids []txn.ItemID
	for i := 0; i < nItems; i++ {
		pid := pids[rng.Intn(nPaths)]
		id := items.Intern(pid, string(rune('a'+i%26))+string(rune('a'+(i/26)%26)))
		m := map[int32]float64{}
		for t := 0; t < 1+rng.Intn(4); t++ {
			m[int32(rng.Intn(20))] = rng.Float64() + 0.1
		}
		items.SetVector(id, vector.FromMap(m))
		ids = append(ids, id)
	}
	return items, ids
}

// TestPropertyConflateTreeTupleForm: conflation always yields a
// tree-tuple-shaped transaction (distinct paths) whose constituent set is
// exactly the distinct input set.
func TestPropertyConflateTreeTupleForm(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab, ids := randomItemTable(rng, 2+rng.Intn(6), 3+rng.Intn(20))
		pick := make([]txn.ItemID, 0, len(ids))
		for _, id := range ids {
			if rng.Float64() < 0.6 {
				pick = append(pick, id)
			}
		}
		if len(pick) == 0 {
			pick = ids[:1]
		}
		rep := ConflateItems(tab, pick)
		// Distinct paths.
		seen := map[xmltree.PathID]bool{}
		gotConstituents := map[txn.ItemID]bool{}
		for _, id := range rep.Items {
			it := tab.Get(id)
			if seen[it.Path] {
				return false
			}
			seen[it.Path] = true
			for _, c := range it.Flatten() {
				gotConstituents[c] = true
			}
		}
		// Constituents == distinct inputs.
		want := map[txn.ItemID]bool{}
		for _, id := range pick {
			want[id] = true
		}
		if len(want) != len(gotConstituents) {
			return false
		}
		for id := range want {
			if !gotConstituents[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyConflateIdempotent: conflating a conflation (through its
// constituents) changes nothing.
func TestPropertyConflateIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab, ids := randomItemTable(rng, 3, 12)
		rep := ConflateItems(tab, ids)
		var flat []txn.ItemID
		for _, id := range rep.Items {
			flat = append(flat, tab.Get(id).Flatten()...)
		}
		return ConflateItems(tab, flat).Equal(rep)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRelocateWithinBounds: every assignment is a valid cluster id
// or the trash cluster, for arbitrary representative subsets.
func TestPropertyRelocateWithinBounds(t *testing.T) {
	corpus := twoTopicDocs(t, 4)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		reps := make([]*txn.Transaction, k)
		for j := range reps {
			if rng.Float64() < 0.7 {
				reps[j] = corpus.Transactions[rng.Intn(len(corpus.Transactions))]
			}
		}
		assign := Relocate(cx, corpus.Transactions, reps)
		for _, a := range assign {
			if a != TrashCluster && (a < 0 || a >= k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRepresentativeSizeBound: representatives never exceed the
// longest member transaction by more than the final conflation step (the
// returned value respects the |trmax| guard).
func TestPropertyRepresentativeSizeBound(t *testing.T) {
	corpus := twoTopicDocs(t, 6)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var members []*txn.Transaction
		for _, tr := range corpus.Transactions {
			if rng.Float64() < 0.5 {
				members = append(members, tr)
			}
		}
		if len(members) == 0 {
			return true
		}
		rep := ComputeLocalRepresentative(RepConfig{Ctx: cx}, members)
		if rep == nil {
			return true
		}
		return rep.Len() <= txn.MaxTransactionLen(members)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertySSEBounds: the SSE objective is within [0, |S|].
func TestPropertySSEBounds(t *testing.T) {
	corpus := twoTopicDocs(t, 4)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	s := corpus.Transactions
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		reps := make([]*txn.Transaction, k)
		for j := range reps {
			reps[j] = s[rng.Intn(len(s))]
		}
		assign := make([]int, len(s))
		for i := range assign {
			assign[i] = rng.Intn(k+1) - 1
		}
		v := SSE(cx, s, assign, reps)
		return v >= 0 && v <= float64(len(s))+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
