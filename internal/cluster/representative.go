// Package cluster implements the cluster-representative machinery of
// Fig. 6 — ComputeLocalRepresentative, ComputeGlobalRepresentative,
// GenerateTreeTuple and conflateItems — together with the centralized
// XML transactional K-means variant the distributed algorithm builds on.
//
// # Delta-state contract
//
// DeltaState carries exact cross-round caches through a run's iterations:
// a membership-fingerprinted representative memo (LocalRep / GlobalRep
// return last round's representative verbatim when the inputs are
// unchanged) and per-document relocation anchors (Relocate folds only the
// representatives that changed since the previous call, skipping a
// document outright when no changed representative's upper bound can beat
// its cached anchor). The contract is byte-identity: for any call
// sequence, results equal the memo-free computation exactly, including
// the lowest-index tie rule. That holds only while the similarity context
// (corpus, F, γ) and the cluster count stay fixed; a caller that changes
// either must call Reset, and DeltaState defensively resets itself when
// handed a representative slice of a different length. Callers also Reset
// on any external invalidation of the run's continuity — a session
// rollback, restore or epoch change, or a serving-layer refresh over a
// rebuilt corpus. One DeltaState serves one sequential run; it is not
// safe for concurrent use (worker parallelism happens inside Relocate).
package cluster

import (
	"sort"

	"xmlclust/internal/parallel"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// ReturnRule selects how GenerateTreeTuple resolves the greedy-refinement
// ambiguities in Fig. 6 (see DESIGN.md).
//
// The pseudocode batches items by equal rank and stops at the first
// objective decrease. With the paper's integer frequency ranks the batches
// are large; with our continuous (content-weighted) ranks they degenerate
// to singletons and the first-decrease stop truncates representatives
// after one or two items. ReturnBestObjective therefore implements the
// prose reading ("until the sum of pairwise similarities … cannot be
// further maximized"): grow the representative up to the |trmax| size
// bound and return the refinement with the maximum objective. The two
// literal readings are kept for the ablation benchmark.
type ReturnRule int

const (
	// ReturnBestObjective grows to the size bound and returns the argmax
	// objective refinement (default).
	ReturnBestObjective ReturnRule = iota
	// ReturnLastImproving stops at the first objective decrease and returns
	// the most recent refinement whose objective did not decrease.
	ReturnLastImproving
	// ReturnPrevious returns `rep` verbatim as written in Fig. 6, i.e. the
	// representative from the iteration before the loop exited.
	ReturnPrevious
)

// RepConfig bundles what representative computation needs.
type RepConfig struct {
	Ctx  *sim.Context
	Rule ReturnRule
	// Workers bounds the goroutines used for item ranking and refinement
	// objectives (0/negative = one per CPU, 1 = serial). The output is
	// byte-identical for any value: ranks are written into pre-indexed
	// slots and objective sums are reduced in index order.
	Workers int
}

// rankedItem pairs an item with its rank value.
type rankedItem struct {
	id   txn.ItemID
	rank float64
}

// pathGroups indexes a set of items by their complete path, recording the
// per-path item count h (the set PC/PT of Fig. 6).
type pathGroups struct {
	counts map[xmltree.PathID]int
	// tagOf caches the tag path of each complete path present.
	tagOf map[xmltree.PathID]xmltree.PathID
}

func groupByPath(items []*txn.Item) pathGroups {
	pg := pathGroups{counts: map[xmltree.PathID]int{}, tagOf: map[xmltree.PathID]xmltree.PathID{}}
	for _, it := range items {
		pg.counts[it.Path]++
		pg.tagOf[it.Path] = it.TagPath
	}
	return pg
}

// structuralRank computes rankS(e) = Σ{h : group p' with simS(e,·) ≥ γ}/|PC|.
// simS depends only on tag paths, so the sum runs over distinct paths.
func structuralRank(cx *sim.Context, e *txn.Item, pg pathGroups) float64 {
	if len(pg.counts) == 0 {
		return 0
	}
	gamma := cx.Params.Gamma
	sum := 0
	for p, h := range pg.counts {
		if cx.TagPathSim(e.TagPath, pg.tagOf[p]) >= gamma {
			sum += h
		}
	}
	return float64(sum) / float64(len(pg.counts))
}

// contentRankSums precomputes Σ_{e'∈I} normalized(u_{e'}) so that
// rankC(e) = Σ_{e'} cos(u_e,u_{e'}) = normalized(u_e)·Σ — turning the
// quadratic cosine pass of Fig. 6 into a linear one.
func contentRankSums(items []*txn.Item) vector.Sparse {
	acc := map[int32]float64{}
	for _, it := range items {
		n := it.Vector.Norm()
		if n == 0 {
			continue
		}
		for _, e := range it.Vector.Entries() {
			acc[e.Term] += e.Weight / n
		}
	}
	return vector.FromMap(acc)
}

func contentRank(e *txn.Item, sum vector.Sparse) float64 {
	n := e.Vector.Norm()
	if n == 0 {
		return 0
	}
	return vector.Dot(e.Vector, sum) / n
}

// distinctItems returns the union of items over the transactions, sorted by
// id (the set IC of Fig. 6).
func distinctItems(trs []*txn.Transaction, tab *txn.ItemTable) []*txn.Item {
	seen := map[txn.ItemID]struct{}{}
	for _, tr := range trs {
		for _, id := range tr.Items {
			seen[id] = struct{}{}
		}
	}
	ids := make([]txn.ItemID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	items := make([]*txn.Item, len(ids))
	for i, id := range ids {
		items[i] = tab.Get(id)
	}
	return items
}

// ComputeLocalRepresentative implements the homonymous function of Fig. 6:
// rank every item of the cluster by f·rankS + (1−f)·rankC and greedily grow
// a tree-tuple-shaped representative. A nil result means the cluster was
// empty.
func ComputeLocalRepresentative(cfg RepConfig, c []*txn.Transaction) *txn.Transaction {
	if len(c) == 0 {
		return nil
	}
	cx := cfg.Ctx
	items := distinctItems(c, cx.Items)
	if len(items) == 0 {
		return nil
	}
	pg := groupByPath(items)
	csum := contentRankSums(items)
	f := cx.Params.F
	ranked := make([]rankedItem, len(items))
	parallel.For(cfg.Workers, len(items), func(i int) {
		it := items[i]
		r := f*structuralRank(cx, it, pg) + (1-f)*contentRank(it, csum)
		ranked[i] = rankedItem{id: it.ID, rank: r}
	})
	sortRanked(ranked)
	return generateTreeTuple(cfg, ranked, c)
}

// WeightedRep is a local representative with its cluster size |C_i_j|, as
// exchanged between peers.
type WeightedRep struct {
	Rep    *txn.Transaction
	Weight int
}

// ComputeGlobalRepresentative implements the Fig. 6 function: it merges the
// per-node local representatives of one cluster, weighting item ranks by
// the summed sizes of the clusters whose representatives carry the item.
func ComputeGlobalRepresentative(cfg RepConfig, reps []WeightedRep) *txn.Transaction {
	var trs []*txn.Transaction
	weightOf := map[txn.ItemID]int{}
	for _, wr := range reps {
		if wr.Rep == nil || wr.Rep.Len() == 0 {
			continue
		}
		trs = append(trs, wr.Rep)
		for _, id := range wr.Rep.Items {
			weightOf[id] += wr.Weight
		}
	}
	if len(trs) == 0 {
		return nil
	}
	cx := cfg.Ctx
	items := distinctItems(trs, cx.Items)
	pg := groupByPath(items)
	csum := contentRankSums(items)
	f := cx.Params.F
	ranked := make([]rankedItem, len(items))
	parallel.For(cfg.Workers, len(items), func(i int) {
		it := items[i]
		base := f*structuralRank(cx, it, pg) + (1-f)*contentRank(it, csum)
		ranked[i] = rankedItem{id: it.ID, rank: float64(weightOf[it.ID]) * base}
	})
	sortRanked(ranked)
	return generateTreeTuple(cfg, ranked, trs)
}

// sortRanked orders by rank descending, breaking ties by item id for
// determinism.
func sortRanked(r []rankedItem) {
	sort.Slice(r, func(i, j int) bool {
		if r[i].rank != r[j].rank {
			return r[i].rank > r[j].rank
		}
		return r[i].id < r[j].id
	})
}

// generateTreeTuple implements GenerateTreeTuple of Fig. 6. ranked must be
// sorted by descending rank. c supplies |trmax| and the refinement
// objective Σ_{tr∈C} simγJ(tr, rep′).
func generateTreeTuple(cfg RepConfig, ranked []rankedItem, c []*txn.Transaction) *txn.Transaction {
	cx := cfg.Ctx
	trmax := txn.MaxTransactionLen(c)
	// The objective Σ_{tr∈C} simγJ(tr, rep′) is the hot spot of
	// representative generation: one transaction similarity per cluster
	// member per refinement step. The terms are independent, so they are
	// computed across the worker pool — each worker reusing one similarity
	// Scratch across the whole refinement, so no step allocates per pair —
	// and reduced in index order (the float sum must not depend on the
	// schedule).
	scratches := make([]*sim.Scratch, parallel.WorkerCount(cfg.Workers, len(c)))
	objective := func(rep *txn.Transaction) float64 {
		return parallel.SumWorkers(cfg.Workers, len(c), func(w, i int) float64 {
			sc := scratches[w]
			if sc == nil {
				sc = sim.NewScratch()
				scratches[w] = sc
			}
			return cx.Transactions(c[i], rep, sc)
		})
	}
	// Batch size: rank ties always travel together; under
	// ReturnBestObjective batches additionally have a minimum size so the
	// number of objective evaluations stays O(trmax), as with the paper's
	// coarse frequency ranks.
	minBatch := 1
	if cfg.Rule == ReturnBestObjective {
		if b := len(ranked) / (4 * (trmax + 1)); b > minBatch {
			minBatch = b
		}
	}

	var (
		chosen  []txn.ItemID // raw constituent ids accumulated so far
		rep     = txn.NewTransaction(nil, -1, -1, -1)
		repPrev *txn.Transaction
		s, sNew float64
		bestRep *txn.Transaction
		bestS   = -1.0
		lastNew *txn.Transaction
	)
	i := 0
	for i < len(ranked) {
		// I*C: the batch of items tied at the current highest rank (plus
		// the minimum batch fill under ReturnBestObjective).
		j := i + 1
		for j < len(ranked) && (ranked[j].rank == ranked[j-1].rank || j-i < minBatch) {
			j++
		}
		repPrev = rep
		s = sNew
		for _, ri := range ranked[i:j] {
			chosen = append(chosen, cx.Items.Get(ri.id).Flatten()...)
		}
		i = j
		repNew := ConflateItems(cx.Items, chosen)
		lastNew = repNew
		if cfg.Rule == ReturnBestObjective {
			if repNew.Len() > trmax && bestRep != nil {
				break // size bound reached; keep the best so far
			}
			sNew = objective(repNew)
			if sNew > bestS {
				bestS, bestRep = sNew, repNew
			}
			rep = repNew
			continue
		}
		sNew = objective(repNew)
		rep = repNew
		// Loop exit per Fig. 6: |rep| > |trmax| ∨ s′ < s. On both exits the
		// previous representative is the right result: it is smaller (size
		// guard) or strictly better (objective decreased).
		if repPrev.Len() > trmax || sNew < s {
			return nonEmpty(repPrev, rep)
		}
	}
	switch cfg.Rule {
	case ReturnBestObjective:
		return nonEmpty(bestRep, lastNew)
	case ReturnPrevious:
		// Fig. 6 as written returns `rep` — the refinement from the
		// iteration before IC was exhausted.
		return nonEmpty(repPrev, rep)
	default:
		return rep
	}
}

// nonEmpty guards against returning the initial empty representative when a
// non-empty refinement exists.
func nonEmpty(preferred, fallback *txn.Transaction) *txn.Transaction {
	if preferred != nil && preferred.Len() > 0 {
		return preferred
	}
	return fallback
}

// ConflateItems implements the conflateItems procedure of Fig. 6: the input
// raw item ids are grouped by complete path; each group becomes one item
// whose content is the union of the group's contents (answers unioned,
// TCU vectors summed over distinct constituents). Groups of one reuse the
// raw item itself. The result is a synthetic transaction in tree-tuple form
// (every path distinct).
func ConflateItems(tab *txn.ItemTable, rawIDs []txn.ItemID) *txn.Transaction {
	byPath := map[xmltree.PathID][]txn.ItemID{}
	seen := map[txn.ItemID]struct{}{}
	var paths []xmltree.PathID
	for _, id := range rawIDs {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		p := tab.Get(id).Path
		if _, ok := byPath[p]; !ok {
			paths = append(paths, p)
		}
		byPath[p] = append(byPath[p], id)
	}
	out := make([]txn.ItemID, 0, len(paths))
	for _, p := range paths {
		group := byPath[p]
		if len(group) == 1 {
			out = append(out, group[0])
			continue
		}
		sort.Slice(group, func(i, j int) bool { return group[i] < group[j] })
		answers := make([]string, len(group))
		merged := vector.Sparse{}
		for i, id := range group {
			it := tab.Get(id)
			answers[i] = it.Answer
			merged = vector.Add(merged, it.Vector)
		}
		key := txn.MergedAnswerKey(answers)
		out = append(out, tab.InternSynthetic(p, key, merged, group))
	}
	return txn.NewTransaction(out, -1, -1, -1)
}
