package complexity

import (
	"math"
	"strings"
	"testing"
	"time"

	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

func testModel() Model {
	return Model{
		S: 1000, K: 10, TrMax: 8, UMax: 30, H: 10,
		TMem: 2 * time.Nanosecond, TComm: 200 * time.Microsecond,
	}
}

func TestValid(t *testing.T) {
	md := testModel()
	if err := md.Valid(); err != nil {
		t.Fatal(err)
	}
	bad := md
	bad.S = 0
	if bad.Valid() == nil {
		t.Error("S=0 should be invalid")
	}
	bad = md
	bad.H = 0.5
	if bad.Valid() == nil {
		t.Error("h<1 should be invalid")
	}
	bad = md
	bad.H = 11
	if bad.Valid() == nil {
		t.Error("h>k should be invalid")
	}
	bad = md
	bad.TComm = 0
	if bad.Valid() == nil {
		t.Error("t_comm=0 should be invalid")
	}
}

// TestHyperbolicThenLinear checks the defining shape of f(m): strictly
// decreasing up to the minimizer, increasing after (Sect. 4.3.4).
func TestHyperbolicThenLinear(t *testing.T) {
	md := testModel()
	opt := md.OptimalM()
	if opt <= 1 {
		t.Fatalf("optimal m = %v, expected > 1 for this workload", opt)
	}
	for m := 1; m < int(opt); m++ {
		if md.GlobalTime(m) <= md.GlobalTime(m+1) {
			t.Errorf("f not decreasing at m=%d (< m*=%.1f)", m, opt)
		}
	}
	after := int(math.Ceil(opt)) + 1
	for m := after; m < after+10; m++ {
		if md.GlobalTime(m) >= md.GlobalTime(m+1) {
			t.Errorf("f not increasing at m=%d (> m*=%.1f)", m, opt)
		}
	}
}

// TestOptimalMIsArgmin verifies the closed-form minimizer against a grid
// search over integer m.
func TestOptimalMIsArgmin(t *testing.T) {
	md := testModel()
	best, bestM := time.Duration(math.MaxInt64), 0
	for m := 1; m <= 500; m++ {
		if d := md.GlobalTime(m); d < best {
			best, bestM = d, m
		}
	}
	opt := md.OptimalM()
	if math.Abs(float64(bestM)-opt) > 1.5 {
		t.Errorf("grid argmin %d far from closed form %.2f", bestM, opt)
	}
}

// TestOptimalMScaling checks the Sect. 4.3.4 proportionality claims: m*
// grows with |S| and shrinks as h grows.
func TestOptimalMScaling(t *testing.T) {
	md := testModel()
	bigger := md
	bigger.S *= 2
	if bigger.OptimalM() <= md.OptimalM() {
		t.Error("m* should grow with |S|")
	}
	skewed := md
	skewed.H = 1 // one dominant cluster
	if skewed.OptimalM() <= md.OptimalM() {
		t.Error("m* should grow as h decreases")
	}
}

func TestMemOpsDecreasesWithPeers(t *testing.T) {
	md := testModel()
	// Per-peer share shrinks with m; the k·m term grows but is dominated.
	m2 := md.MemOps(md.S/2, 2)
	m10 := md.MemOps(md.S/10, 10)
	if m10 >= m2 {
		t.Errorf("per-peer mem ops should shrink: m=2 %.0f vs m=10 %.0f", m2, m10)
	}
}

func TestCommOpsGrowth(t *testing.T) {
	md := testModel()
	if md.CommOps(1) != 0 {
		t.Error("m=1 must have zero communication")
	}
	// (m−1)/m is increasing in m.
	prev := 0.0
	for m := 2; m <= 20; m++ {
		c := md.CommOps(m)
		if c <= prev {
			t.Errorf("comm ops not increasing at m=%d", m)
		}
		prev = c
	}
}

func TestFitRecoversConstants(t *testing.T) {
	md := testModel()
	want := md
	t1, t2 := md.GlobalTime(2), md.GlobalTime(8)
	md.TMem, md.TComm = time.Nanosecond, time.Nanosecond // scramble
	if err := md.Fit(2, t1, 8, t2); err != nil {
		t.Fatal(err)
	}
	if relDiff(md.TMem.Seconds(), want.TMem.Seconds()) > 0.05 {
		t.Errorf("t_mem fit %v, want %v", md.TMem, want.TMem)
	}
	if relDiff(md.TComm.Seconds(), want.TComm.Seconds()) > 0.05 {
		t.Errorf("t_comm fit %v, want %v", md.TComm, want.TComm)
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	md := testModel()
	if err := md.Fit(5, time.Second, 2, time.Second); err == nil {
		t.Error("m1 ≥ m2 should fail")
	}
	// Increasing-then-decreasing measurements can't come from A/m + B(m−1)
	// with positive A,B.
	if err := md.Fit(2, time.Millisecond, 8, time.Microsecond); err == nil {
		t.Error("inconsistent measurements should fail")
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFromCorpus(t *testing.T) {
	docs := []string{
		`<r><a>alpha beta gamma</a><b>delta</b></r>`,
		`<r><a>epsilon zeta</a><b>eta theta iota</b><c>kappa</c></r>`,
	}
	var trees []*xmltree.Tree
	for _, d := range docs {
		tr, err := xmltree.ParseString(d, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	corpus := txn.Build(trees, txn.BuildOptions{})
	weighting.Apply(corpus)
	md := FromCorpus(corpus, 2)
	if err := md.Valid(); err != nil {
		t.Fatal(err)
	}
	if md.S != 2 || md.TrMax != 3 {
		t.Errorf("workload constants: %+v", md)
	}
	if md.UMax == 0 {
		t.Error("umax should be positive after weighting")
	}
}

func TestCurveAndWrite(t *testing.T) {
	md := testModel()
	ms := []int{1, 3, 5}
	curve := md.Curve(ms)
	if len(curve) != 3 {
		t.Fatalf("curve points = %d", len(curve))
	}
	var sb strings.Builder
	md.Write(&sb, ms)
	for _, frag := range []string{"cost model", "f(m)", "optimal"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("Write missing %q", frag)
		}
	}
}

func TestGlobalTimeEdge(t *testing.T) {
	md := testModel()
	if md.GlobalTime(0) != 0 {
		t.Error("m=0 should be 0")
	}
	if md.GlobalTime(1) <= 0 {
		t.Error("m=1 should be positive")
	}
}
