// Package complexity implements the analytical cost model of Sect. 4.3:
// the per-peer main-memory cost C_mem, the communication cost C_comm, the
// global time function
//
//	f(m) = |trmax|·|umax|·( |trmax|²·|S|²·t_mem/(h·m) + k·t_comm·(m−1) )
//
// (Sect. 4.3.4) and its minimizer
//
//	m* = |S|/√h · √( |trmax|²·t_mem / (k·t_comm) )
//
// which upper-bounds the network size that still yields efficiency gains.
// The experiment harness compares these predictions against the measured
// Fig. 7 curves.
package complexity

import (
	"fmt"
	"io"
	"math"
	"time"

	"xmlclust/internal/txn"
)

// Model carries the workload and machine constants of Sect. 4.3.4.
type Model struct {
	// S is the total number of transactions |S|.
	S int
	// K is the number of clusters.
	K int
	// TrMax is |trmax|, the maximum transaction length.
	TrMax int
	// UMax is |umax|, the maximum TCU vector dimensionality.
	UMax int
	// H ∈ [1,k] captures the cluster-size distribution: k for balanced
	// clusters (Case 1 of Sect. 4.3.4), 1 for one dominant cluster (Case 2).
	H float64
	// TMem is the time of a single main-memory operation.
	TMem time.Duration
	// TComm is the time of a single inter-node communication.
	TComm time.Duration
}

// FromCorpus derives the workload constants from a corpus, with h estimated
// as balanced (H = k).
func FromCorpus(c *txn.Corpus, k int) Model {
	trMax := txn.MaxTransactionLen(c.Transactions)
	uMax := 0
	for id := 0; id < c.Items.Len(); id++ {
		if l := c.Items.Get(txn.ItemID(id)).Vector.Len(); l > uMax {
			uMax = l
		}
	}
	return Model{
		S: len(c.Transactions), K: k, TrMax: trMax, UMax: uMax, H: float64(k),
		// Defaults in the ballpark of a 2000s-era node (the paper's
		// Itanium 2 testbed) on a GigaBit LAN; calibrate with Fit.
		TMem:  2 * time.Nanosecond,
		TComm: 200 * time.Microsecond,
	}
}

// Valid reports whether the model constants are usable.
func (md Model) Valid() error {
	switch {
	case md.S <= 0:
		return fmt.Errorf("complexity: |S| must be positive")
	case md.K <= 0:
		return fmt.Errorf("complexity: k must be positive")
	case md.TrMax <= 0 || md.UMax < 0:
		return fmt.Errorf("complexity: workload constants degenerate")
	case md.H < 1 || md.H > float64(md.K):
		return fmt.Errorf("complexity: h must lie in [1,k]")
	case md.TMem <= 0 || md.TComm <= 0:
		return fmt.Errorf("complexity: machine constants must be positive")
	}
	return nil
}

// MemOps returns the Sect. 4.3.2 bound on per-peer main-memory operations
// for one iteration with local share sizeI = |S_i|:
//
//	C_mem = |trmax|³·|umax|·(Σ_j |C_i_j|² + k·m) ≈ |trmax|³·|umax|·(|S_i|²/h' + k·m)
//
// with h' = H·(m²)/… folded into the balanced-share approximation
// Σ|C_i_j|² ≈ |S_i|²·(k/H)/k = |S_i|²/H for balanced clusters.
func (md Model) MemOps(sizeI, m int) float64 {
	tr3 := math.Pow(float64(md.TrMax), 3)
	sum := float64(sizeI) * float64(sizeI) / md.H * float64(md.K)
	if md.H == float64(md.K) {
		sum = float64(sizeI) * float64(sizeI) / float64(md.K)
	}
	return tr3 * float64(md.UMax) * (sum + float64(md.K*m))
}

// CommOps returns the Sect. 4.3.3 bound on per-peer transferred units per
// iteration: O((m−1)/m · k · |trmax| · |umax|) in each direction.
func (md Model) CommOps(m int) float64 {
	if m <= 1 {
		return 0
	}
	frac := float64(m-1) / float64(m)
	return frac * float64(md.K) * float64(md.TrMax) * float64(md.UMax)
}

// GlobalTime evaluates f(m), the paper's global time consumption bound.
func (md Model) GlobalTime(m int) time.Duration {
	if m < 1 {
		return 0
	}
	trU := float64(md.TrMax) * float64(md.UMax)
	memTerm := math.Pow(float64(md.TrMax), 2) * float64(md.S) * float64(md.S) *
		md.TMem.Seconds() / (md.H * float64(m))
	commTerm := float64(md.K) * md.TComm.Seconds() * float64(m-1)
	return time.Duration(trU * (memTerm + commTerm) * float64(time.Second))
}

// OptimalM returns the minimizer m* of f(m) — the upper bound on the
// number of peers that still improves efficiency (Sect. 4.3.4).
func (md Model) OptimalM() float64 {
	return float64(md.S) / math.Sqrt(md.H) *
		math.Sqrt(math.Pow(float64(md.TrMax), 2)*md.TMem.Seconds()/
			(float64(md.K)*md.TComm.Seconds()))
}

// Curve evaluates f(m) over a set of network sizes.
func (md Model) Curve(ms []int) []time.Duration {
	out := make([]time.Duration, len(ms))
	for i, m := range ms {
		out[i] = md.GlobalTime(m)
	}
	return out
}

// Fit calibrates TMem and TComm so that f(m) passes through two measured
// points (m1,t1) and (m2,t2) with m1 < m2. It returns an error when the
// measurements cannot be explained by the model (e.g. non-positive
// solution).
func (md *Model) Fit(m1 int, t1 time.Duration, m2 int, t2 time.Duration) error {
	if m1 >= m2 || m1 < 1 {
		return fmt.Errorf("complexity: need 1 ≤ m1 < m2")
	}
	// f(m) = A/m + B(m−1) with
	//   A = trU·tr²·S²/h · tmem,  B = trU·k · tcomm.
	// Two equations, two unknowns.
	x1, y1 := 1/float64(m1), float64(m1-1)
	x2, y2 := 1/float64(m2), float64(m2-1)
	det := x1*y2 - x2*y1
	if det == 0 {
		return fmt.Errorf("complexity: degenerate fit points")
	}
	a := (float64(t1)*y2 - float64(t2)*y1) / det
	b := (float64(t2)*x1 - float64(t1)*x2) / det
	trU := float64(md.TrMax) * float64(md.UMax)
	if trU == 0 {
		return fmt.Errorf("complexity: workload constants degenerate")
	}
	tmem := a / (trU * math.Pow(float64(md.TrMax), 2) * float64(md.S) * float64(md.S) / md.H)
	tcomm := b / (trU * float64(md.K))
	if tmem <= 0 || tcomm <= 0 {
		return fmt.Errorf("complexity: measurements inconsistent with the model (t_mem=%v t_comm=%v)", tmem, tcomm)
	}
	md.TMem = time.Duration(tmem)
	md.TComm = time.Duration(tcomm)
	return nil
}

// Write renders the model and its predictions.
func (md Model) Write(w io.Writer, ms []int) {
	fmt.Fprintf(w, "cost model (Sect. 4.3.4): |S|=%d k=%d |trmax|=%d |umax|=%d h=%.0f t_mem=%v t_comm=%v\n",
		md.S, md.K, md.TrMax, md.UMax, md.H, md.TMem, md.TComm)
	fmt.Fprintf(w, "%6s  %16s\n", "m", "f(m)")
	for _, m := range ms {
		fmt.Fprintf(w, "%6d  %16s\n", m, md.GlobalTime(m).Round(time.Microsecond))
	}
	fmt.Fprintf(w, "predicted optimal m* = %.1f\n", md.OptimalM())
}
