package xmlclust

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// assertSameResult compares the byte-identity surface of two results:
// assignments, representatives and round count.
func assertSameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if want.Rounds != got.Rounds {
		t.Errorf("%s: rounds %d vs %d", label, want.Rounds, got.Rounds)
	}
	if len(want.Assign) != len(got.Assign) {
		t.Fatalf("%s: assign length %d vs %d", label, len(want.Assign), len(got.Assign))
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			t.Fatalf("%s: assignment %d differs: %d vs %d", label, i, want.Assign[i], got.Assign[i])
		}
	}
	if len(want.Reps) != len(got.Reps) {
		t.Fatalf("%s: reps length %d vs %d", label, len(want.Reps), len(got.Reps))
	}
	for j := range want.Reps {
		switch {
		case want.Reps[j] == nil && got.Reps[j] == nil:
		case want.Reps[j] == nil || got.Reps[j] == nil:
			t.Errorf("%s: rep %d nil-ness differs", label, j)
		case !want.Reps[j].Equal(got.Reps[j]):
			t.Errorf("%s: rep %d differs", label, j)
		}
	}
}

// TestEngineMatchesLegacyCluster is the API-equivalence contract: a shared
// Engine — including one whose caches are already warm from prior runs with
// other parameters — produces output byte-identical to the deprecated
// Cluster free function for the same options and seed.
func TestEngineMatchesLegacyCluster(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the engine's caches with runs at other params first.
	for _, f := range []float64{0.1, 0.9} {
		if _, err := eng.Cluster(context.Background(), ClusterOptions{K: 2, F: f, Gamma: 0.5, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	for _, opts := range []ClusterOptions{
		{K: 2, F: 0.5, Gamma: 0.6, Seed: 4},
		{K: 2, F: 0.5, Gamma: 0.6, Peers: 3, Seed: 4},
		{K: 3, F: 0.2, Gamma: 0.7, Peers: 2, Seed: 11, Algorithm: PKMeans},
	} {
		want, err := Cluster(corpus, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Cluster(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, got, "warm engine vs legacy")
		// And once more on the now-warmer engine: cache warmth must never
		// leak into results.
		again, err := eng.Cluster(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, again, "second warm run")
	}
	if eng.CachedPathSims() == 0 {
		t.Error("engine accumulated no structural pair similarities")
	}
}

// TestEngineValidation asserts the typed range validation of every entry
// point, including the deprecated wrappers.
func TestEngineValidation(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		field string
		opts  ClusterOptions
	}{
		{"K", ClusterOptions{K: 0, F: 0.5, Gamma: 0.5}},
		{"K", ClusterOptions{K: -3, F: 0.5, Gamma: 0.5}},
		{"F", ClusterOptions{K: 2, F: -0.1, Gamma: 0.5}},
		{"F", ClusterOptions{K: 2, F: 1.1, Gamma: 0.5}},
		{"Gamma", ClusterOptions{K: 2, F: 0.5, Gamma: -0.5}},
		{"Gamma", ClusterOptions{K: 2, F: 0.5, Gamma: 1.5}},
	}
	for _, c := range bad {
		check := func(err error, label string) {
			t.Helper()
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("%s %+v: want *OptionsError, got %v", label, c.opts, err)
			}
			if oe.Field != c.field {
				t.Errorf("%s %+v: flagged field %s, want %s", label, c.opts, oe.Field, c.field)
			}
		}
		_, err := eng.Cluster(context.Background(), c.opts)
		check(err, "Engine.Cluster")
		_, err = Cluster(corpus, c.opts)
		check(err, "legacy Cluster")
		_, err = eng.ClusterDistributed(context.Background(), DistributedOptions{
			K: c.opts.K, F: c.opts.F, Gamma: c.opts.Gamma,
			PeerAddrs: []string{"127.0.0.1:0"},
		})
		check(err, "Engine.ClusterDistributed")
		_, err = eng.Sweep(context.Background(), SweepSpec{Base: c.opts})
		check(err, "Engine.Sweep")
	}
	// Boundary values are legal.
	for _, opts := range []ClusterOptions{
		{K: 1, F: 0, Gamma: 0, Seed: 1},
		{K: 1, F: 1, Gamma: 1, Seed: 1},
	} {
		if _, err := eng.Cluster(context.Background(), opts); err != nil {
			t.Errorf("boundary options %+v rejected: %v", opts, err)
		}
	}
}

// TestRunOptionsValidation pins the execution-shaping option checks:
// negative MaxRounds, Workers and RoundTimeout used to be accepted silently
// (falling back to defaults or arming expired deadlines); every entry point
// must now reject them with a typed *OptionsError naming the field.
func TestRunOptionsValidation(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, err error, field string) {
		t.Helper()
		var oe *OptionsError
		if !errors.As(err, &oe) {
			t.Fatalf("want *OptionsError for %s, got %v", field, err)
		}
		if oe.Field != field {
			t.Errorf("flagged field %s, want %s", oe.Field, field)
		}
	}
	cases := []struct {
		field string
		opts  ClusterOptions
	}{
		{"MaxRounds", ClusterOptions{K: 2, F: 0.5, Gamma: 0.5, MaxRounds: -1}},
		{"Workers", ClusterOptions{K: 2, F: 0.5, Gamma: 0.5, Workers: -2}},
		{"RoundTimeout", ClusterOptions{K: 2, F: 0.5, Gamma: 0.5, RoundTimeout: -time.Second}},
	}
	for _, c := range cases {
		t.Run(c.field, func(t *testing.T) {
			check(t, ValidateClusterOptions(c.opts), c.field)
			_, err := eng.Cluster(context.Background(), c.opts)
			check(t, err, c.field)
			_, err = Cluster(corpus, c.opts)
			check(t, err, c.field)
			_, err = eng.Sweep(context.Background(), SweepSpec{Base: c.opts})
			check(t, err, c.field)
			if c.field != "RoundTimeout" {
				// DistributedOptions keeps negative-timeout = "no deadline".
				_, err = eng.ClusterDistributed(context.Background(), DistributedOptions{
					K: 2, F: 0.5, Gamma: 0.5, PeerAddrs: []string{"127.0.0.1:0"},
					MaxRounds: c.opts.MaxRounds, Workers: c.opts.Workers,
				})
				check(t, err, c.field)
			}
		})
	}
	t.Run("ClassifyWorkers", func(t *testing.T) {
		_, err := eng.ClassifyTransactions(context.Background(), nil, nil,
			ClassifyOptions{F: 0.5, Gamma: 0.5, Workers: -1})
		check(t, err, "Workers")
	})
	t.Run("ClassifyGamma", func(t *testing.T) {
		_, err := eng.ClassifyTransactions(context.Background(), nil, nil,
			ClassifyOptions{F: 0.5, Gamma: 1.5})
		check(t, err, "Gamma")
	})

	// Zero stays the documented default everywhere, and DistributedOptions'
	// negative timeouts remain legal "no deadline" markers (validated
	// before any listener is bound, so a bad peer table still errors).
	if err := ValidateClusterOptions(ClusterOptions{K: 2, F: 0.5, Gamma: 0.5}); err != nil {
		t.Errorf("zero run options rejected: %v", err)
	}
	_, err = eng.ClusterDistributed(context.Background(), DistributedOptions{
		K: 2, F: 0.5, Gamma: 0.5, RoundTimeout: -1, StartupTimeout: -1,
	})
	if err == nil || errors.As(err, new(*OptionsError)) {
		t.Errorf("negative distributed timeouts must stay legal (failed on the empty peer table only): %v", err)
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers) or the deadline expires.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudges finished goroutines' stacks into reuse
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after cancellation: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEngineCancellation cancels a running job from inside its own event
// stream and asserts the typed error and the absence of goroutine leaks.
func TestEngineCancellation(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = eng.Cluster(ctx, ClusterOptions{
		K: 2, F: 0.5, Gamma: 0.6, Peers: 3, Seed: 4,
		// MaxRounds is high so only cancellation can end the run early;
		// the first round-start event pulls the trigger.
		MaxRounds: DefaultMaxRoundsForTest,
		Events: func(ev Event) {
			if ev.Kind == EventRoundStart {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context.Canceled should stay in the chain, got %v", err)
	}
	waitForGoroutines(t, baseline)

	// A pre-canceled context aborts before any protocol work, for both
	// algorithms and the distributed surface.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	for _, alg := range []Algorithm{CXKMeans, PKMeans} {
		_, err := eng.Cluster(done, ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Peers: 2, Seed: 4, Algorithm: alg})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("algorithm %v: want ErrCanceled, got %v", alg, err)
		}
	}
	_, err = eng.ClusterDistributed(done, DistributedOptions{
		K: 2, F: 0.5, Gamma: 0.6, Seed: 4, ID: 0, PeerAddrs: []string{"127.0.0.1:0"},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("distributed: want ErrCanceled, got %v", err)
	}
	waitForGoroutines(t, baseline)
}

// DefaultMaxRoundsForTest keeps the cancellation run from terminating by
// convergence before the event callback cancels it.
const DefaultMaxRoundsForTest = 1000

// TestEngineEvents asserts the event-stream contract: round events per
// peer, exactly one trailing run-level Done, and serialized callbacks (the
// slice below is appended to without locking — the race detector guards
// the serialization guarantee).
func TestEngineEvents(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	res, err := eng.Cluster(context.Background(), ClusterOptions{
		K: 2, F: 0.5, Gamma: 0.6, Peers: 2, Seed: 4,
		Events: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	last := events[len(events)-1]
	if last.Kind != EventDone || last.Peer != -1 {
		t.Errorf("last event should be the run-level Done, got kind=%v peer=%d", last.Kind, last.Peer)
	}
	if last.Round != res.Rounds {
		t.Errorf("run Done reports %d rounds, result has %d", last.Round, res.Rounds)
	}
	if last.Elapsed <= 0 {
		t.Error("run Done carries no elapsed time")
	}
	if last.SentMsgs != res.TrafficMsgs || last.SentBytes != res.TrafficBytes {
		t.Errorf("run Done traffic (%d msgs/%d B) != result traffic (%d/%d)",
			last.SentMsgs, last.SentBytes, res.TrafficMsgs, res.TrafficBytes)
	}
	counts := map[EventKind]int{}
	peerDone := 0
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == EventDone && ev.Peer >= 0 {
			peerDone++
		}
		if ev.Peer < -1 || ev.Peer >= 2 {
			t.Errorf("event with out-of-range peer %d", ev.Peer)
		}
	}
	if got := counts[EventRoundStart]; got != 2*res.Rounds {
		t.Errorf("RoundStart count %d, want peers×rounds = %d", got, 2*res.Rounds)
	}
	if got := counts[EventRoundEnd]; got != 2*res.Rounds {
		t.Errorf("RoundEnd count %d, want peers×rounds = %d", got, 2*res.Rounds)
	}
	if counts[EventRepsExchanged] != 2*res.Rounds {
		t.Errorf("RepsExchanged count %d, want %d", counts[EventRepsExchanged], 2*res.Rounds)
	}
	if counts[EventPhaseChange] == 0 {
		t.Error("no PhaseChange events")
	}
	if peerDone != 2 {
		t.Errorf("peer-level Done count %d, want 2", peerDone)
	}
	// RoundEnd events carry the local objective (strictly positive on this
	// corpus: no peer clusters its slice perfectly in round 1).
	sawObjective := false
	for _, ev := range events {
		if ev.Kind == EventRoundEnd && ev.Objective > 0 {
			sawObjective = true
		}
	}
	if !sawObjective {
		t.Error("no RoundEnd event carried a positive objective")
	}

	// The PK-means baseline emits round events too.
	events = nil
	_, err = eng.Cluster(context.Background(), ClusterOptions{
		K: 2, F: 0.5, Gamma: 0.6, Peers: 2, Seed: 4, Algorithm: PKMeans,
		Events: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pk := map[EventKind]int{}
	for _, ev := range events {
		pk[ev.Kind]++
	}
	if pk[EventRoundStart] == 0 || pk[EventRoundEnd] == 0 || pk[EventDone] == 0 {
		t.Errorf("PK-means event counts incomplete: %v", pk)
	}
}

// TestEngineSweep asserts grid enumeration order, per-cell equivalence with
// individual Engine.Cluster runs, score computation on labeled corpora and
// the OnCell progress callback.
func TestEngineSweep(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{
		Base:        ClusterOptions{K: 2, Seed: 4, Peers: 2},
		Fs:          []float64{0.2, 0.8},
		Gammas:      []float64{0.5, 0.7},
		Concurrency: 2,
	}
	var onCellCount int
	spec.OnCell = func(SweepCell) { onCellCount++ } // serialized by contract
	cells, err := eng.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cell count %d, want 4", len(cells))
	}
	if onCellCount != 4 {
		t.Errorf("OnCell invoked %d times, want 4", onCellCount)
	}
	wantGrid := []struct{ f, g float64 }{{0.2, 0.5}, {0.2, 0.7}, {0.8, 0.5}, {0.8, 0.7}}
	labels := Labels(corpus)
	for i, cell := range cells {
		if cell.Index != i {
			t.Errorf("cell %d carries index %d", i, cell.Index)
		}
		if cell.Options.F != wantGrid[i].f || cell.Options.Gamma != wantGrid[i].g {
			t.Errorf("cell %d = (f=%g, γ=%g), want (%g, %g)",
				i, cell.Options.F, cell.Options.Gamma, wantGrid[i].f, wantGrid[i].g)
		}
		if !cell.Labeled {
			t.Errorf("cell %d not labeled on a labeled corpus", i)
		}
		want, err := eng.Cluster(context.Background(), cell.Options)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, cell.Result, "sweep cell vs direct run")
		if s := Evaluate(labels, want.Assign, cell.Options.K); s != cell.Scores {
			t.Errorf("cell %d scores %+v, want %+v", i, cell.Scores, s)
		}
	}

	// Cancellation propagates out of the sweep as ErrCanceled.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Sweep(done, spec); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled sweep: want ErrCanceled, got %v", err)
	}

	// An unlabeled corpus yields Labeled == false and zero scores.
	var plainTrees []*Tree
	for _, d := range sampleDocs {
		tr, err := ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		plainTrees = append(plainTrees, tr)
	}
	plain := BuildCorpus(plainTrees, CorpusOptions{})
	eng2, err := NewEngine(plain, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cells2, err := eng2.Sweep(context.Background(), SweepSpec{Base: ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells2) != 1 {
		t.Fatalf("degenerate grid has %d cells, want 1", len(cells2))
	}
	if cells2[0].Labeled || cells2[0].Scores != (Scores{}) {
		t.Errorf("unlabeled corpus produced scores: %+v", cells2[0])
	}
}

// TestEngineSweepWarmCacheGrows asserts the reuse mechanism the sweep is
// built on: the shared structural cache accumulates across cells instead of
// being rebuilt per cell.
func TestEngineSweepWarmCacheGrows(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.CachedPathSims() != 0 {
		t.Fatalf("fresh engine reports %d cached pair sims", eng.CachedPathSims())
	}
	if _, err := eng.Cluster(context.Background(), ClusterOptions{K: 2, F: 0.7, Gamma: 0.6, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	warm := eng.CachedPathSims()
	if warm == 0 {
		t.Fatal("structure-heavy run cached no pair similarities")
	}
	// A second run at different (f, γ) — new context, same shared cache.
	if _, err := eng.Cluster(context.Background(), ClusterOptions{K: 2, F: 0.9, Gamma: 0.8, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if eng.CachedPathSims() < warm {
		t.Errorf("cache shrank across runs: %d → %d", warm, eng.CachedPathSims())
	}
}

// TestNewEngineNilCorpus pins the constructor's validation.
func TestNewEngineNilCorpus(t *testing.T) {
	if _, err := NewEngine(nil, EngineOptions{}); err == nil {
		t.Fatal("nil corpus should fail")
	}
}
