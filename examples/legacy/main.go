// Legacy: exercises the deprecated pre-Engine free functions. This example
// exists as a compile-time compatibility contract — the CI deprecation
// check builds it, so removing or breaking the legacy wrappers (Cluster,
// ClusterDistributed) fails the pipeline instead of silently breaking
// downstream users. New code should use NewEngine + Engine.Cluster; see
// the migration table in the README.
//
//lint:file-ignore SA1019 this example exists to pin the deprecated surface
package main

import (
	"fmt"
	"log"

	"xmlclust"
)

var docs = []string{
	`<inventory><item sku="1"><name>espresso machine</name><kind>kitchen</kind></item></inventory>`,
	`<inventory><item sku="2"><name>espresso grinder</name><kind>kitchen</kind></item></inventory>`,
	`<inventory><item sku="3"><name>trail running shoes</name><kind>sports</kind></item></inventory>`,
	`<inventory><item sku="4"><name>road running shoes</name><kind>sports</kind></item></inventory>`,
}

func main() {
	var trees []*xmlclust.Tree
	for _, d := range docs {
		t, err := xmlclust.ParseString(d)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, t)
	}
	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{})

	// The deprecated one-shot entry point: no context, no events, a
	// throwaway engine per call — byte-identical to Engine.Cluster with the
	// same options and seed.
	res, err := xmlclust.Cluster(corpus, xmlclust.ClusterOptions{
		K: 2, F: 0.4, Gamma: 0.6, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for doc, cl := range xmlclust.DocumentClusters(corpus, res.Assign) {
		fmt.Printf("document %d → cluster %d\n", doc, cl)
	}

	// The deprecated distributed entry point stays callable too (a 1-peer
	// "cluster" over loopback).
	dres, err := xmlclust.ClusterDistributed(corpus, xmlclust.DistributedOptions{
		K: 2, F: 0.4, Gamma: 0.6, Seed: 3,
		ID: 0, PeerAddrs: []string{"127.0.0.1:0"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed wrapper: %d rounds, %d assignments\n", dres.Rounds, len(dres.Assign))
}
