// Softwarereviews: the paper's second motivating scenario (Sect. 1) — P2P
// users share software metadata in XML, where the same information is
// encoded text-centrically by some sources (full review text in repeated
// <review> elements) and data-centrically by others (a <reviews> subtree
// with per-aspect sub-elements). The partial matchings between the two
// structures, combined with text values, let structure/content-driven
// clustering group descriptions of the same software category across
// encodings.
package main

import (
	"context"
	"fmt"
	"log"

	"xmlclust"
)

// Text-centric encoding: reviews as repeated flat elements.
const textCentric = `<software name="%s">
  <developer>%s</developer>
  <license>%s</license>
  <review>%s rating four of five recommended</review>
  <review>%s rating three of five mixed feelings</review>
</software>`

// Data-centric encoding: structured reviews subtree with aspect fields.
const dataCentric = `<software name="%s">
  <developer>%s</developer>
  <license>%s</license>
  <reviews>
    <entry>
      <positive>%s</positive>
      <negative>minor quirks installer</negative>
      <rating>4</rating>
      <recommendation>recommended</recommendation>
    </entry>
  </reviews>
</software>`

type product struct {
	name, dev, license, blurb string
	category                  int
}

var products = []product{
	// Category 0: image editors.
	{"photopro", "acme soft", "commercial", "excellent photo editing layers filters", 0},
	{"pixelpaint", "acme soft", "freeware", "great photo editing brushes filters", 0},
	{"rawstudio", "lens labs", "open source", "powerful photo editing raw processing", 0},
	{"shadecraft", "lens labs", "commercial", "solid photo editing color filters", 0},
	// Category 1: code editors.
	{"codeflow", "dev tools inc", "open source", "fast code editing completion debugging", 1},
	{"syntaxia", "dev tools inc", "commercial", "smart code editing refactoring debugging", 1},
	{"hackpad", "indie devs", "freeware", "light code editing syntax highlighting", 1},
	{"buildmate", "indie devs", "open source", "robust code editing build integration", 1},
}

func main() {
	var trees []*xmlclust.Tree
	var labels []int
	for i, p := range products {
		// Alternate encodings: even products text-centric, odd data-centric.
		var doc string
		if i%2 == 0 {
			doc = fmt.Sprintf(textCentric, p.name, p.dev, p.license, p.blurb, p.blurb)
		} else {
			doc = fmt.Sprintf(dataCentric, p.name, p.dev, p.license, p.blurb)
		}
		t, err := xmlclust.ParseString(doc)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, t)
		labels = append(labels, p.category)
	}

	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{Labels: labels})
	fmt.Printf("%d software descriptions (2 encodings) → %d transactions\n",
		len(trees), len(corpus.Transactions))

	// Hybrid setting: the two encodings must be bridged by content while
	// the shared fields (developer, license) still contribute structurally.
	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	best := xmlclust.Scores{}
	var bestRes *xmlclust.Result
	for seed := int64(1); seed <= 8; seed++ {
		res, err := eng.Cluster(context.Background(), xmlclust.ClusterOptions{
			K: 2, F: 0.15, Gamma: 0.5, Peers: 2, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if s := xmlclust.Evaluate(xmlclust.Labels(corpus), res.Assign, 2); s.FMeasure > best.FMeasure {
			best, bestRes = s, res
		}
	}
	fmt.Printf("best seed: F=%.3f purity=%.3f trash=%.2f (rounds %d)\n",
		best.FMeasure, best.Purity, best.Trash, bestRes.Rounds)

	for doc, cl := range xmlclust.DocumentClusters(corpus, bestRes.Assign) {
		enc := "text-centric"
		if doc%2 == 1 {
			enc = "data-centric"
		}
		fmt.Printf("  %-12s (%-12s, category %d) → cluster %d\n",
			products[doc].name, enc, products[doc].category, cl)
	}
}
