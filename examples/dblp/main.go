// DBLP: reproduce the paper's running example end to end on a generated
// DBLP-like bibliography — show the tree tuple decomposition of one record
// (Fig. 2/3), the transactional model (Fig. 4), and all three clustering
// settings (structure-, content-, and structure/content-driven) over a
// distributed network, reporting F-measure against the reference classes.
package main

import (
	"context"
	"fmt"
	"log"

	"xmlclust"
)

// The Fig. 2 document of the paper.
const fig2 = `<dblp>
  <inproceedings key="conf/kdd/ZakiA03">
    <author>M.J. Zaki</author>
    <author>C.C. Aggarwal</author>
    <title>XRules: an effective structural classifier for XML data</title>
    <year>2003</year>
    <booktitle>KDD</booktitle>
    <pages>316-325</pages>
  </inproceedings>
  <inproceedings key="conf/kdd/Zaki02">
    <author>M.J. Zaki</author>
    <title>Efficiently mining frequent trees in a forest</title>
    <year>2002</year>
    <booktitle>KDD</booktitle>
    <pages>71-80</pages>
  </inproceedings>
</dblp>`

func main() {
	// Part 1 — the paper's running example.
	tree, err := xmlclust.ParseString(fig2)
	if err != nil {
		log.Fatal(err)
	}
	corpus := xmlclust.BuildCorpus([]*xmlclust.Tree{tree}, xmlclust.CorpusOptions{})
	fmt.Printf("Fig. 2 document: %d tree tuples (Fig. 3), %d distinct items (Fig. 4(b))\n",
		len(corpus.Transactions), corpus.Items.Len())
	for i, tr := range corpus.Transactions {
		fmt.Printf("  tr%d: %d items\n", i+1, tr.Len())
	}

	// Part 2 — cluster a bibliography in the three settings. Records carry
	// venue and author regularities per research community, so each
	// setting recovers a different reference organization.
	bib, labels := makeBibliography()
	fmt.Printf("\nbibliography: %d records\n", len(bib))

	type setting struct {
		name  string
		f     float64
		gamma float64
		k     int
		ref   []int
	}
	settings := []setting{
		{"structure-driven  (f=0.85)", 0.85, 0.6, 2, labels.structure},
		{"content-driven    (f=0.15)", 0.15, 0.6, 2, labels.content},
		{"hybrid            (f=0.50)", 0.50, 0.7, 4, labels.hybrid},
	}
	for _, s := range settings {
		c := xmlclust.BuildCorpus(bib, xmlclust.CorpusOptions{Labels: s.ref})
		// One Engine per corpus: the seed restarts below share its warm
		// similarity caches instead of recomputing them per run.
		eng, err := xmlclust.NewEngine(c, xmlclust.EngineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		bestF := -1.0
		var rounds int
		for seed := int64(1); seed <= 6; seed++ {
			res, err := eng.Cluster(context.Background(), xmlclust.ClusterOptions{
				K: s.k, F: s.f, Gamma: s.gamma, Peers: 3, Seed: seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if f := xmlclust.Evaluate(xmlclust.Labels(c), res.Assign, s.k).FMeasure; f > bestF {
				bestF, rounds = f, res.Rounds
			}
		}
		fmt.Printf("  %s k=%d 3 peers: best F=%.3f (%d rounds)\n", s.name, s.k, bestF, rounds)
	}
}

type refLabels struct{ structure, content, hybrid []int }

func makeBibliography() ([]*xmlclust.Tree, refLabels) {
	type rec struct {
		article bool
		topic   int
	}
	topics := [][]string{
		{"frequent pattern mining transactional data", "mining association rules itemsets", "pattern growth mining algorithms"},
		{"wireless routing protocols networks", "network congestion control routing", "peer networks overlay routing"},
	}
	venues := []string{"knowledge discovery conference", "networking systems symposium"}
	var trees []*xmlclust.Tree
	var ref refLabels
	id := 0
	for _, r := range []rec{
		{true, 0}, {true, 0}, {true, 1}, {true, 1},
		{false, 0}, {false, 0}, {false, 1}, {false, 1},
		{true, 0}, {false, 1},
	} {
		title := topics[r.topic][id%3]
		var doc string
		if r.article {
			doc = fmt.Sprintf(`<dblp><article key="a%d"><author>researcher %d</author><title>%s</title><journal>journal of %s</journal><volume>%d</volume></article></dblp>`,
				id, r.topic*3+id%3, title, venues[r.topic], id+1)
		} else {
			doc = fmt.Sprintf(`<dblp><inproceedings key="c%d"><author>researcher %d</author><title>%s</title><booktitle>proceedings of %s</booktitle><pages>%d-%d</pages></inproceedings></dblp>`,
				id, r.topic*3+id%3, title, venues[r.topic], id*10, id*10+9)
		}
		t, err := xmlclust.ParseString(doc)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, t)
		structLabel := 0
		if !r.article {
			structLabel = 1
		}
		ref.structure = append(ref.structure, structLabel)
		ref.content = append(ref.content, r.topic)
		ref.hybrid = append(ref.hybrid, structLabel*2+r.topic)
		id++
	}
	return trees, ref
}
