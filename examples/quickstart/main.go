// Quickstart: parse a handful of XML documents, build the transactional
// corpus and cluster it centrally with CXK-means — the minimal end-to-end
// use of the public API.
package main

import (
	"fmt"
	"log"

	"xmlclust"
)

var docs = []string{
	`<library><book isbn="1"><title>introduction to data mining</title><author>jane smith</author><topic>mining</topic></book></library>`,
	`<library><book isbn="2"><title>advanced data mining patterns</title><author>li wei</author><topic>mining</topic></book></library>`,
	`<library><book isbn="3"><title>mining massive datasets</title><author>jane smith</author><topic>mining</topic></book></library>`,
	`<library><book isbn="4"><title>computer networks explained</title><author>amy jones</author><topic>networks</topic></book></library>`,
	`<library><book isbn="5"><title>wireless networks handbook</title><author>raj patel</author><topic>networks</topic></book></library>`,
	`<library><book isbn="6"><title>software defined networks</title><author>amy jones</author><topic>networks</topic></book></library>`,
}

func main() {
	// 1. Parse the documents into labeled rooted trees.
	var trees []*xmlclust.Tree
	for _, d := range docs {
		t, err := xmlclust.ParseString(d)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, t)
	}

	// 2. Decompose into tree tuples, model as transactions, weight text.
	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{})
	fmt.Printf("%d documents → %d transactions over %d items\n",
		len(trees), len(corpus.Transactions), corpus.Items.Len())

	// 3. Cluster (centralized: Peers defaults to 1). f=0.3 leans on
	// content, γ=0.6 tolerates partial matches.
	res, err := xmlclust.Cluster(corpus, xmlclust.ClusterOptions{
		K: 2, F: 0.3, Gamma: 0.6, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d rounds (%v)\n", res.Rounds, res.WallTime.Round(1e6))

	// 4. Report per-document clusters (majority vote over tuples).
	for doc, cl := range xmlclust.DocumentClusters(corpus, res.Assign) {
		name := fmt.Sprintf("cluster %d", cl)
		if cl == xmlclust.TrashCluster {
			name = "trash"
		}
		fmt.Printf("  document %d (%s) → %s\n", doc, firstTitle(trees[doc]), name)
	}
}

func firstTitle(t *xmlclust.Tree) string {
	for _, n := range t.Nodes {
		if n.Label == "S" && n.Parent != nil && n.Parent.Label == "title" {
			return n.Value
		}
	}
	return "?"
}
