// Quickstart: parse a handful of XML documents, build the transactional
// corpus, bind an Engine to it and run one cancellable, observable
// CXK-means job — the minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"xmlclust"
)

var docs = []string{
	`<library><book isbn="1"><title>introduction to data mining</title><author>jane smith</author><topic>mining</topic></book></library>`,
	`<library><book isbn="2"><title>advanced data mining patterns</title><author>li wei</author><topic>mining</topic></book></library>`,
	`<library><book isbn="3"><title>mining massive datasets</title><author>jane smith</author><topic>mining</topic></book></library>`,
	`<library><book isbn="4"><title>computer networks explained</title><author>amy jones</author><topic>networks</topic></book></library>`,
	`<library><book isbn="5"><title>wireless networks handbook</title><author>raj patel</author><topic>networks</topic></book></library>`,
	`<library><book isbn="6"><title>software defined networks</title><author>amy jones</author><topic>networks</topic></book></library>`,
}

func main() {
	// 1. Parse the documents into labeled rooted trees.
	var trees []*xmlclust.Tree
	for _, d := range docs {
		t, err := xmlclust.ParseString(d)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, t)
	}

	// 2. Decompose into tree tuples, model as transactions, weight text.
	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{})
	fmt.Printf("%d documents → %d transactions over %d items\n",
		len(trees), len(corpus.Transactions), corpus.Items.Len())

	// 3. Bind a reusable Engine to the corpus: every job run on it shares
	// the warm structural similarity cache, so re-clustering with other
	// parameters (or a whole Engine.Sweep grid) gets cheaper after the
	// first run.
	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run one job (centralized: Peers defaults to 1). f=0.3 leans on
	// content, γ=0.6 tolerates partial matches. The context cancels the
	// job at a clean round boundary (wire it to signal.NotifyContext in a
	// real deployment); Events streams round-by-round progress.
	res, err := eng.Cluster(context.Background(), xmlclust.ClusterOptions{
		K: 2, F: 0.3, Gamma: 0.6, Seed: 5,
		Events: func(ev xmlclust.Event) {
			if ev.Kind == xmlclust.EventRoundEnd {
				fmt.Printf("  round %d: objective %.3f\n", ev.Round+1, ev.Objective)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d rounds (%v)\n", res.Rounds, res.WallTime.Round(1e6))

	// 5. Report per-document clusters (majority vote over tuples).
	for doc, cl := range xmlclust.DocumentClusters(corpus, res.Assign) {
		name := fmt.Sprintf("cluster %d", cl)
		if cl == xmlclust.TrashCluster {
			name = "trash"
		}
		fmt.Printf("  document %d (%s) → %s\n", doc, firstTitle(trees[doc]), name)
	}
}

func firstTitle(t *xmlclust.Tree) string {
	for _, n := range t.Nodes {
		if n.Label == "S" && n.Parent != nil && n.Parent.Label == "title" {
			return n.Value
		}
	}
	return "?"
}
