// Newsfeed: the paper's motivating high-demand scenario (Sect. 1) — a news
// service clustering XML articles from many sources every few minutes.
// Articles are spread over a simulated P2P network of editorial peers;
// each peer clusters its local feed and the peers converge on a global
// topical organization by exchanging cluster representatives. Because the
// articles come from different providers, the same story is marked up with
// different schemas; content-driven similarity groups them anyway.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"xmlclust"
)

// Two provider schemas for the same kind of content.
const (
	providerA = `<rss><item guid="%s"><title>%s</title><description>%s</description><category>%s</category></item></rss>`
	providerB = `<feed><entry id="%s"><headline>%s</headline><body><p>%s</p></body><section>%s</section></entry></feed>`
)

var topics = map[string][]string{
	"markets": {"stocks rally quarter earnings", "central bank rates decision inflation", "currency markets trading volumes", "bond yields investors earnings"},
	"sports":  {"championship final overtime victory", "transfer window striker signing", "marathon record pace runners", "playoff series decisive game"},
	"science": {"spacecraft orbit mission launch", "genome sequencing study cells", "telescope galaxy observation data", "climate model simulation results"},
}

func main() {
	rng := rand.New(rand.NewSource(7))
	var trees []*xmlclust.Tree
	var labels []int
	topicNames := []string{"markets", "sports", "science"}
	for ti, topic := range topicNames {
		for i := 0; i < 8; i++ {
			phrases := topics[topic]
			headline := phrases[rng.Intn(len(phrases))]
			body := phrases[rng.Intn(len(phrases))] + " " + phrases[rng.Intn(len(phrases))] + " " + phrases[rng.Intn(len(phrases))]
			id := fmt.Sprintf("%s-%d", topic, i)
			schema := providerA
			if i%2 == 1 {
				schema = providerB
			}
			doc := fmt.Sprintf(schema, id, headline, body, topic)
			t, err := xmlclust.ParseString(doc)
			if err != nil {
				log.Fatal(err)
			}
			trees = append(trees, t)
			labels = append(labels, ti)
		}
	}

	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{Labels: labels})
	fmt.Printf("ingested %d articles from 2 providers → %d transactions\n",
		len(trees), len(corpus.Transactions))

	// Distribute the feed over 4 editorial peers; content-driven setting
	// (f low) because providers use different markup for the same stories.
	// Initial representatives are seed-sensitive (standard K-means
	// behavior), so take the best of a few restarts as a production
	// deployment would.
	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var res *xmlclust.Result
	var scores xmlclust.Scores
	for seed := int64(1); seed <= 8; seed++ {
		r, err := eng.Cluster(context.Background(), xmlclust.ClusterOptions{
			K: 3, F: 0.1, Gamma: 0.5, Peers: 4, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if s := xmlclust.Evaluate(xmlclust.Labels(corpus), r.Assign, 3); s.FMeasure > scores.FMeasure {
			scores, res = s, r
		}
	}
	fmt.Printf("4 peers converged in %d rounds; traffic %d msgs / %d bytes\n",
		res.Rounds, res.TrafficMsgs, res.TrafficBytes)
	fmt.Printf("F-measure vs editorial desks: %.3f (purity %.3f)\n",
		scores.FMeasure, scores.Purity)

	// Show each discovered cluster with its dominant desk.
	members := map[int][]int{}
	for i, tr := range corpus.Transactions {
		members[res.Assign[i]] = append(members[res.Assign[i]], tr.Doc)
	}
	for cl := 0; cl < 3; cl++ {
		count := map[string]int{}
		for _, doc := range members[cl] {
			count[topicNames[labels[doc]]]++
		}
		var parts []string
		for _, tn := range topicNames {
			if count[tn] > 0 {
				parts = append(parts, fmt.Sprintf("%s×%d", tn, count[tn]))
			}
		}
		fmt.Printf("  cluster %d: %s\n", cl, strings.Join(parts, " "))
	}
	if n := len(members[xmlclust.TrashCluster]); n > 0 {
		fmt.Printf("  trash: %d transactions\n", n)
	}
}
