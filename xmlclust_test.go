package xmlclust

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var sampleDocs = []string{
	`<catalog><sw key="a1"><name>photo editor deluxe</name><vendor>acme soft</vendor><platform>linux</platform></sw></catalog>`,
	`<catalog><sw key="a2"><name>photo editor classic</name><vendor>acme soft</vendor><platform>windows</platform></sw></catalog>`,
	`<catalog><sw key="a3"><name>photo viewer basic</name><vendor>acme soft</vendor><platform>linux</platform></sw></catalog>`,
	`<catalog><game key="b1"><title>space battle arena</title><studio>pixel works</studio><genre>arcade shooter</genre></game></catalog>`,
	`<catalog><game key="b2"><title>space battle legends</title><studio>pixel works</studio><genre>arcade shooter</genre></game></catalog>`,
	`<catalog><game key="b3"><title>castle battle siege</title><studio>pixel works</studio><genre>strategy battle</genre></game></catalog>`,
}

func sampleCorpus(t testing.TB) *Corpus {
	t.Helper()
	var trees []*Tree
	labels := []int{0, 0, 0, 1, 1, 1}
	for _, d := range sampleDocs {
		tree, err := ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	return BuildCorpus(trees, CorpusOptions{Labels: labels})
}

func TestEndToEndPipeline(t *testing.T) {
	corpus := sampleCorpus(t)
	if len(corpus.Transactions) != 6 {
		t.Fatalf("transactions = %d, want 6", len(corpus.Transactions))
	}
	bestF := -1.0
	for seed := int64(1); seed <= 5; seed++ {
		res, err := Cluster(corpus, ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if s := Evaluate(Labels(corpus), res.Assign, 2); s.FMeasure > bestF {
			bestF = s.FMeasure
		}
	}
	if bestF < 0.9 {
		t.Errorf("best F = %v on separable catalog", bestF)
	}
}

func TestClusterMultiPeer(t *testing.T) {
	corpus := sampleCorpus(t)
	res, err := Cluster(corpus, ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Peers: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Error("no rounds recorded")
	}
	if res.TrafficMsgs == 0 || res.TrafficBytes == 0 {
		t.Error("no traffic recorded for m=3")
	}
	if res.SimulatedTime <= 0 || res.WallTime <= 0 {
		t.Error("times not recorded")
	}
}

// TestClusterDistributed drives the one-process-per-peer surface: three
// concurrent ClusterDistributed calls (each with its own Node transport and
// similarity context, exactly as three OS processes would run) must agree
// with the in-process engine for the same parameters.
func TestClusterDistributed(t *testing.T) {
	corpus := sampleCorpus(t)
	want, err := Cluster(corpus, ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Peers: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Reserve three loopback addresses for the shared peer table.
	addrs := make([]string, 3)
	listeners := make([]net.Listener, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	results := make([]*DistributedResult, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = ClusterDistributed(corpus, DistributedOptions{
				K: 2, F: 0.5, Gamma: 0.6, ID: i, PeerAddrs: addrs, Seed: 4,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	if results[0].Assign == nil {
		t.Fatal("coordinator carries no corpus-wide assignment")
	}
	for i, a := range want.Assign {
		if results[0].Assign[i] != a {
			t.Fatalf("assignment %d differs: distributed %d vs in-process %d", i, results[0].Assign[i], a)
		}
	}
	refDigest := RepsDigest(corpus, want.Reps)
	for i := 0; i < 3; i++ {
		if results[i].RepsDigest != refDigest {
			t.Errorf("peer %d reps digest %016x, in-process run %016x", i, results[i].RepsDigest, refDigest)
		}
	}
	for i := 1; i < 3; i++ {
		if results[i].Assign != nil {
			t.Errorf("peer %d reports a corpus-wide assignment", i)
		}
		if len(results[i].LocalAssign) == 0 {
			t.Errorf("peer %d reports no local assignment", i)
		}
	}
}

// TestDistributedFabricValidation covers the option cross-checks of the
// elastic fabric surface: fabric features without a checkpoint dir, the
// Resume/Join exclusivity, the coordinator restriction, and a Resume against
// an empty store.
func TestDistributedFabricValidation(t *testing.T) {
	corpus := sampleCorpus(t)
	addrs := []string{"127.0.0.1:9", "127.0.0.1:9"} // never dialed: validation fails first
	base := DistributedOptions{K: 2, F: 0.5, Gamma: 0.6, PeerAddrs: addrs, Seed: 4}

	bad := []struct {
		name   string
		mutate func(*DistributedOptions)
	}{
		{"resume+join", func(o *DistributedOptions) { o.CheckpointDir = t.TempDir(); o.ID = 1; o.Resume = true; o.Join = true }},
		{"resume without fabric", func(o *DistributedOptions) { o.ID = 1; o.Resume = true }},
		{"join without fabric", func(o *DistributedOptions) { o.ID = 1; o.Join = true }},
		{"leave without fabric", func(o *DistributedOptions) { o.ID = 1; o.Leave = make(chan struct{}) }},
		{"debug addr without fabric", func(o *DistributedOptions) { o.ID = 1; o.DebugAddr = "127.0.0.1:0" }},
		{"failpoint without fabric", func(o *DistributedOptions) { o.ID = 1; o.FailpointRound = 1 }},
	}
	for _, tc := range bad {
		opts := base
		tc.mutate(&opts)
		if _, err := ClusterDistributed(corpus, opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	opts := base
	opts.CheckpointDir = t.TempDir()
	opts.Resume = true
	if _, err := ClusterDistributed(corpus, opts); !errors.Is(err, ErrCoordinatorLost) {
		t.Errorf("coordinator resume: want ErrCoordinatorLost, got %v", err)
	}

	// A member resuming from an empty store must fail before touching the
	// network beyond its own listener.
	opts = base
	opts.ID = 1
	opts.Listen = "127.0.0.1:0"
	opts.CheckpointDir = t.TempDir()
	opts.Resume = true
	if _, err := ClusterDistributed(corpus, opts); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("resume from empty store: want ErrNoCheckpoint, got %v", err)
	}
}

func TestClusterPKMeansBaseline(t *testing.T) {
	corpus := sampleCorpus(t)
	res, err := Cluster(corpus, ClusterOptions{
		K: 2, F: 0.5, Gamma: 0.6, Peers: 2, Seed: 4, Algorithm: PKMeans,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(corpus.Transactions) {
		t.Error("assignment size mismatch")
	}
}

func TestClusterOverTCP(t *testing.T) {
	corpus := sampleCorpus(t)
	res, err := Cluster(corpus, ClusterOptions{
		K: 2, F: 0.5, Gamma: 0.6, Peers: 2, Seed: 4, UseTCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(corpus.Transactions) {
		t.Error("assignment size mismatch")
	}
}

func TestClusterValidation(t *testing.T) {
	corpus := sampleCorpus(t)
	if _, err := Cluster(corpus, ClusterOptions{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestDocumentClustersMajority(t *testing.T) {
	corpus := sampleCorpus(t)
	assign := make([]int, len(corpus.Transactions))
	for i := range assign {
		if corpus.Transactions[i].Doc < 3 {
			assign[i] = 0
		} else {
			assign[i] = 1
		}
	}
	dc := DocumentClusters(corpus, assign)
	for doc, cl := range dc {
		want := 0
		if doc >= 3 {
			want = 1
		}
		if cl != want {
			t.Errorf("doc %d → cluster %d, want %d", doc, cl, want)
		}
	}
}

// multiTupleCorpus builds a corpus whose documents each decompose into
// several transactions, so majority voting has real work to do.
func multiTupleCorpus(t *testing.T) *Corpus {
	t.Helper()
	docs := []string{
		`<catalog><sw key="a1"><name>photo editor</name></sw><sw key="a2"><name>photo viewer</name></sw><sw key="a3"><name>photo printer</name></sw></catalog>`,
		`<catalog><game key="b1"><title>space battle</title></game><game key="b2"><title>space race</title></game><game key="b3"><title>space siege</title></game></catalog>`,
	}
	var trees []*Tree
	for _, d := range docs {
		tree, err := ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	corpus := BuildCorpus(trees, CorpusOptions{})
	perDoc := map[int]int{}
	for _, tr := range corpus.Transactions {
		perDoc[tr.Doc]++
	}
	for doc, n := range perDoc {
		if n < 3 {
			t.Fatalf("test corpus assumption broken: doc %d has %d transactions, need ≥ 3", doc, n)
		}
	}
	return corpus
}

// TestDocumentClustersTieBreak pins the documented tie rule: equal vote
// counts go to the LOWER cluster id, regardless of vote order.
func TestDocumentClustersTieBreak(t *testing.T) {
	corpus := multiTupleCorpus(t)
	assign := make([]int, len(corpus.Transactions))
	// Per document: first transaction → cluster 5, second → cluster 2,
	// remaining → trash. 5 and 2 tie on one vote each ⇒ cluster 2 wins.
	seen := map[int]int{}
	for i, tr := range corpus.Transactions {
		switch seen[tr.Doc] {
		case 0:
			assign[i] = 5
		case 1:
			assign[i] = 2
		default:
			assign[i] = TrashCluster
		}
		seen[tr.Doc]++
	}
	for doc, cl := range DocumentClusters(corpus, assign) {
		if cl != 2 {
			t.Errorf("doc %d: tie resolved to %d, want lower id 2", doc, cl)
		}
	}
}

// TestDocumentClustersTrashNeverOutvotes pins that trash votes are ignored
// while any real cluster got at least one vote: a document with one real
// vote and many trash votes still maps to the real cluster.
func TestDocumentClustersTrashNeverOutvotes(t *testing.T) {
	corpus := multiTupleCorpus(t)
	assign := make([]int, len(corpus.Transactions))
	first := map[int]bool{}
	for i, tr := range corpus.Transactions {
		if !first[tr.Doc] {
			assign[i] = 3
			first[tr.Doc] = true
		} else {
			assign[i] = TrashCluster
		}
	}
	for doc, cl := range DocumentClusters(corpus, assign) {
		if cl != 3 {
			t.Errorf("doc %d: trash outvoted the real cluster (got %d)", doc, cl)
		}
	}
}

// TestDocumentClustersShortAssign pins the behaviour for assignment slices
// shorter than the transaction list: trailing transactions cast no votes,
// and a document whose transactions ALL fall past the end follows the
// documented all-trash rule — it maps to TrashCluster instead of being
// silently dropped from the result (the historical bug).
func TestDocumentClustersShortAssign(t *testing.T) {
	corpus := multiTupleCorpus(t)
	// Cover only the transactions of the first document.
	firstDoc := corpus.Transactions[0].Doc
	n := 0
	for _, tr := range corpus.Transactions {
		if tr.Doc != firstDoc {
			break
		}
		n++
	}
	if n == len(corpus.Transactions) {
		t.Fatal("test needs a second document past the assignment slice")
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = 1
	}
	dc := DocumentClusters(corpus, assign)
	if cl, ok := dc[firstDoc]; !ok || cl != 1 {
		t.Errorf("covered doc %d → %d (present %v), want cluster 1", firstDoc, cl, ok)
	}
	secondDoc := corpus.Transactions[n].Doc
	if cl, ok := dc[secondDoc]; !ok || cl != TrashCluster {
		t.Errorf("uncovered doc %d → %d (present %v), want TrashCluster: every document must appear", secondDoc, cl, ok)
	}
	if len(dc) != 2 {
		t.Errorf("result must cover every document of the corpus; got %v", dc)
	}

	// Empty assignment: no votes at all, every document maps to the trash.
	dc = DocumentClusters(corpus, nil)
	if len(dc) != 2 {
		t.Errorf("nil assignment must still map every document: %v", dc)
	}
	for doc, cl := range dc {
		if cl != TrashCluster {
			t.Errorf("nil assignment: doc %d → %d, want TrashCluster", doc, cl)
		}
	}
}

// TestMajorityCluster pins the exported per-document vote: the same rule
// DocumentClusters applies, usable on a single document's assignment.
func TestMajorityCluster(t *testing.T) {
	cases := []struct {
		name   string
		assign []int
		want   int
	}{
		{"empty", nil, TrashCluster},
		{"all trash", []int{TrashCluster, TrashCluster}, TrashCluster},
		{"majority", []int{2, 1, 2}, 2},
		{"tie to lower id", []int{5, 2, 2, 5}, 2},
		{"trash never outvotes", []int{TrashCluster, TrashCluster, 3}, 3},
		{"single vote", []int{0}, 0},
	}
	for _, tc := range cases {
		if got := MajorityCluster(tc.assign); got != tc.want {
			t.Errorf("%s: MajorityCluster(%v) = %d, want %d", tc.name, tc.assign, got, tc.want)
		}
	}
}

func TestDocumentClustersAllTrash(t *testing.T) {
	corpus := sampleCorpus(t)
	assign := make([]int, len(corpus.Transactions))
	for i := range assign {
		assign[i] = TrashCluster
	}
	for doc, cl := range DocumentClusters(corpus, assign) {
		if cl != TrashCluster {
			t.Errorf("doc %d should be trash, got %d", doc, cl)
		}
	}
}

func TestEvaluateScores(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	s := Evaluate(labels, []int{0, 0, 1, 1}, 2)
	if s.FMeasure != 1 || s.Purity != 1 || s.Trash != 0 {
		t.Errorf("perfect scores = %+v", s)
	}
	s = Evaluate(labels, []int{-1, -1, -1, -1}, 2)
	if s.Trash != 1 {
		t.Errorf("all-trash = %+v", s)
	}
}

func TestParseStringErrors(t *testing.T) {
	if _, err := ParseString("not xml"); err == nil {
		t.Error("garbage should fail")
	}
}

func TestParseFilesMissing(t *testing.T) {
	if _, err := ParseFiles([]string{"/nonexistent/file.xml"}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseReader(t *testing.T) {
	tree, err := Parse(strings.NewReader("<a><b>text</b></a>"), ParseOptions{ConcatenateText: true, KeepAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Label != "a" {
		t.Errorf("root = %q", tree.Root.Label)
	}
}

func TestSaveLoadCorpus(t *testing.T) {
	corpus := sampleCorpus(t)
	var buf bytes.Buffer
	if err := SaveCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Transactions) != len(corpus.Transactions) {
		t.Fatalf("transactions %d != %d", len(back.Transactions), len(corpus.Transactions))
	}
	// A loaded corpus clusters identically to the original.
	a, err := Cluster(corpus, ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(back, ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs after save/load", i)
		}
	}
}

// TestClusterWorkersEquivalence asserts the public-API determinism
// guarantee: ClusterOptions.Workers changes only wall time, never output.
func TestClusterWorkersEquivalence(t *testing.T) {
	corpus := sampleCorpus(t)
	run := func(workers int) *Result {
		res, err := Cluster(corpus, ClusterOptions{
			K: 2, F: 0.5, Gamma: 0.6, Peers: 2, Workers: workers, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{4, 0} {
		got := run(w)
		if serial.Rounds != got.Rounds {
			t.Errorf("workers=%d: rounds %d vs %d", w, serial.Rounds, got.Rounds)
		}
		for i := range serial.Assign {
			if serial.Assign[i] != got.Assign[i] {
				t.Fatalf("workers=%d: assignment %d differs", w, i)
			}
		}
		for j := range serial.Reps {
			switch {
			case serial.Reps[j] == nil && got.Reps[j] == nil:
			case serial.Reps[j] == nil || got.Reps[j] == nil:
				t.Errorf("workers=%d: rep %d nil-ness differs", w, j)
			case !serial.Reps[j].Equal(got.Reps[j]):
				t.Errorf("workers=%d: rep %d differs", w, j)
			}
		}
	}
}

func writeSampleDir(t testing.TB) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, len(sampleDocs))
	for i, d := range sampleDocs {
		p := filepath.Join(dir, fmt.Sprintf("doc-%02d.xml", i))
		if err := os.WriteFile(p, []byte(d), 0o644); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return dir, paths
}

func corpusBytes(t testing.TB, c *Corpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBuildCorpusFromSourceMatchesBatch(t *testing.T) {
	dir, paths := writeSampleDir(t)
	trees, err := ParseFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	want := corpusBytes(t, BuildCorpus(trees, CorpusOptions{}))

	for _, workers := range []int{1, 2, 8} {
		src, err := DirSource(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, stats, err := BuildCorpusFromSource(src, CorpusOptions{IngestWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(corpusBytes(t, c), want) {
			t.Fatalf("workers=%d: streaming corpus differs from batch BuildCorpus", workers)
		}
		if stats.Docs != len(sampleDocs) {
			t.Fatalf("workers=%d: ingested %d docs, want %d", workers, stats.Docs, len(sampleDocs))
		}
		if stats.DocsPerSec() <= 0 {
			t.Fatalf("workers=%d: DocsPerSec = %v", workers, stats.DocsPerSec())
		}
	}
}

func TestTreeSourceCarriesLabels(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1}
	var trees []*Tree
	for _, d := range sampleDocs {
		tree, err := ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	want := corpusBytes(t, sampleCorpus(t))
	c, _, err := BuildCorpusFromSource(TreeSource("sample", trees, labels), CorpusOptions{IngestWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(corpusBytes(t, c), want) {
		t.Fatal("tree-source corpus differs from labeled BuildCorpus")
	}
	for i, l := range Labels(c) {
		if l != labels[c.Transactions[i].Doc] {
			t.Fatalf("transaction %d label %d, want %d", i, l, labels[c.Transactions[i].Doc])
		}
	}
}

func TestClusterFromStreamingCorpus(t *testing.T) {
	dir, _ := writeSampleDir(t)
	src, err := DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := BuildCorpusFromSource(src, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(c, ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 3, Peers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(c.Transactions) {
		t.Fatalf("assign len %d, want %d", len(res.Assign), len(c.Transactions))
	}
}

func TestOpenCorpus(t *testing.T) {
	dir, _ := writeSampleDir(t)

	// Raw directory: builds via the streaming pipeline.
	fromDir, stats, err := OpenCorpus(dir, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Docs != len(sampleDocs) {
		t.Fatalf("dir ingest: %d docs, want %d", stats.Docs, len(sampleDocs))
	}

	// Saved gob: loads without ingestion.
	gobPath := filepath.Join(t.TempDir(), "corpus.gob")
	f, err := os.Create(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(f, fromDir); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fromGob, stats, err := OpenCorpus(gobPath, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Docs != 0 {
		t.Fatalf("gob load reported ingestion stats: %+v", stats)
	}
	if !bytes.Equal(corpusBytes(t, fromDir), corpusBytes(t, fromGob)) {
		t.Fatal("gob round trip through OpenCorpus differs")
	}

	// Garbage: a readable error naming both interpretations.
	junk := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(junk, []byte("\x00\x01\x02 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenCorpus(junk, CorpusOptions{}); err == nil {
		t.Fatal("garbage should not load")
	} else if !strings.Contains(err.Error(), "neither XML data nor a saved corpus") {
		t.Fatalf("unhelpful error: %v", err)
	}

	if _, _, err := OpenCorpus(filepath.Join(dir, "missing"), CorpusOptions{}); err == nil {
		t.Fatal("missing path should error")
	}
}

func TestDirSourceRequiresXML(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "readme.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DirSource(dir); err == nil {
		t.Fatal("directory without XML documents should error")
	}
}

func TestBuildCorpusFromSourceLabelsFallback(t *testing.T) {
	// File sources carry no labels; CorpusOptions.Labels (document order)
	// must fill them in, matching the batch path exactly.
	dir, paths := writeSampleDir(t)
	labels := []int{0, 0, 0, 1, 1, 1}
	trees, err := ParseFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	want := corpusBytes(t, BuildCorpus(trees, CorpusOptions{Labels: labels}))

	src, err := DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := BuildCorpusFromSource(src, CorpusOptions{Labels: labels, IngestWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(corpusBytes(t, c), want) {
		t.Fatal("streaming corpus with Labels fallback differs from labeled batch BuildCorpus")
	}
	for i, l := range Labels(c) {
		if want := labels[c.Transactions[i].Doc]; l != want {
			t.Fatalf("transaction %d label %d, want %d", i, l, want)
		}
	}
}
