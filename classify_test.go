package xmlclust

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestClassifyTransactionsFixedPoint: at convergence a clustering is a fixed
// point of relocation, so classifying every corpus transaction against the
// final representatives must reproduce the final assignment exactly, for any
// worker count.
func TestClassifyTransactionsFixedPoint(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Cluster(context.Background(), ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cls, err := eng.ClassifyTransactions(context.Background(), corpus.Transactions, res.Reps,
			ClassifyOptions{F: 0.5, Gamma: 0.6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(cls.Assign) != len(res.Assign) {
			t.Fatalf("workers=%d: classify returned %d assignments, want %d", workers, len(cls.Assign), len(res.Assign))
		}
		for i := range cls.Assign {
			if cls.Assign[i] != res.Assign[i] {
				t.Errorf("workers=%d: transaction %d classified to %d, clustering assigned %d",
					workers, i, cls.Assign[i], res.Assign[i])
			}
			if cls.Assign[i] != TrashCluster && cls.Sims[i] <= 0 {
				t.Errorf("workers=%d: transaction %d in cluster %d with sim %g", workers, i, cls.Assign[i], cls.Sims[i])
			}
		}
	}
}

func TestClassifyEmptyRepsIsTrash(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := eng.ClassifyTransactions(context.Background(), corpus.Transactions, nil,
		ClassifyOptions{F: 0.5, Gamma: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Cluster != TrashCluster {
		t.Fatalf("no representatives but majority cluster %d", cls.Cluster)
	}
	for i, cl := range cls.Assign {
		if cl != TrashCluster {
			t.Errorf("transaction %d assigned to %d with no representatives", i, cl)
		}
	}
}

// TestClassifyDocument: a held-out document classifies into the cluster of
// its topic, and the read-only contract holds — the corpus transaction set
// does not grow and the extracted transactions are marked transient.
func TestClassifyDocument(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Cluster(context.Background(), ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dc := DocumentClusters(corpus, res.Assign)

	held := `<catalog><sw key="ax"><name>photo editor holdout</name><vendor>acme soft</vendor><platform>linux</platform></sw></catalog>`
	tree, err := ParseString(held)
	if err != nil {
		t.Fatal(err)
	}
	txnsBefore := len(corpus.Transactions)
	trs := eng.ExtractTransactions(tree, 0)
	if len(trs) == 0 {
		t.Fatal("no transactions extracted from held-out doc")
	}
	for _, tr := range trs {
		if tr.Doc != -1 {
			t.Fatalf("transient transaction carries doc id %d, want -1", tr.Doc)
		}
	}
	if len(corpus.Transactions) != txnsBefore {
		t.Fatalf("ExtractTransactions grew the corpus: %d → %d", txnsBefore, len(corpus.Transactions))
	}

	cls, err := eng.Classify(context.Background(), tree, res.Reps, ClassifyOptions{F: 0.5, Gamma: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if want := dc[0]; cls.Cluster != want { // docs 0-2 are the sw topic
		t.Fatalf("held-out sw doc classified to %d, corpus sw docs sit in %d", cls.Cluster, want)
	}
	if len(corpus.Transactions) != txnsBefore {
		t.Fatalf("Classify grew the corpus: %d → %d", txnsBefore, len(corpus.Transactions))
	}
}

func TestClassifyCancellation(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Cluster(context.Background(), ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ClassifyTransactions(ctx, corpus.Transactions, res.Reps,
		ClassifyOptions{F: 0.5, Gamma: 0.6}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled classify: got %v, want ErrCanceled", err)
	}
}

// TestEngineConcurrentClusterClassify hammers one engine with clustering and
// read-only classification from many goroutines at once. The shared
// PathCache, ItemSimCache and params-keyed sim contexts must tolerate this;
// run under -race this is the regression test for the serving layer's
// concurrency contract.
func TestEngineConcurrentClusterClassify(t *testing.T) {
	corpus := sampleCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Cluster(context.Background(), ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := eng.Cluster(context.Background(),
					ClusterOptions{K: 2, F: 0.5, Gamma: 0.6, Seed: seed, Workers: 2}); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g + 1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				cls, err := eng.ClassifyTransactions(context.Background(), corpus.Transactions, res.Reps,
					ClassifyOptions{F: 0.5, Gamma: 0.6, Workers: 2})
				if err != nil {
					errs <- err
					return
				}
				for j := range cls.Assign {
					if cls.Assign[j] != res.Assign[j] {
						errs <- errors.New("concurrent classify diverged from the converged assignment")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
