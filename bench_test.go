package xmlclust

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (Sect. 5), plus the DESIGN.md ablations. Each
// benchmark runs the corresponding experiment driver and prints the same
// rows/series the paper reports, so that
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Sizes come from the "quick" profile by
// default; set XMLCLUST_SCALE=paper for the paper-geometry profile (much
// slower). See EXPERIMENTS.md for the paper-vs-measured comparison.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xmlclust/internal/corpus"
	"xmlclust/internal/dataset"
	"xmlclust/internal/experiments"
	"xmlclust/internal/tuple"
	"xmlclust/internal/xmltree"
)

func benchScale() experiments.Scale {
	if os.Getenv("XMLCLUST_SCALE") == "paper" {
		return experiments.PaperScale()
	}
	return experiments.QuickScale()
}

var printOnce sync.Map

// printBench writes an experiment's output a single time per process even
// when the benchmark framework re-runs the function.
func printBench(key string, write func()) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		write()
	}
}

// ---------------------------------------------------------------- Fig. 7

func benchFig7(b *testing.B, ds string) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(ds, scale)
		if err != nil {
			b.Fatal(err)
		}
		printBench("fig7-"+ds, func() { res.Write(os.Stdout) })
		last := res.Full.Points[len(res.Full.Points)-1]
		first := res.Full.Points[0]
		b.ReportMetric(float64(first.SimTime.Microseconds()), "simμs/m=1")
		b.ReportMetric(float64(last.SimTime.Microseconds()), "simμs/m=max")
		b.ReportMetric(float64(res.Full.SaturationM(0.15)), "saturation-m")
	}
}

// BenchmarkFig7DBLP regenerates Fig. 7(a): clustering time vs nodes, DBLP.
func BenchmarkFig7DBLP(b *testing.B) { benchFig7(b, "DBLP") }

// BenchmarkFig7IEEE regenerates Fig. 7(b): clustering time vs nodes, IEEE.
func BenchmarkFig7IEEE(b *testing.B) { benchFig7(b, "IEEE") }

// BenchmarkFig7Shakespeare regenerates Fig. 7(c).
func BenchmarkFig7Shakespeare(b *testing.B) { benchFig7(b, "Shakespeare") }

// BenchmarkFig7Wikipedia regenerates Fig. 7(d).
func BenchmarkFig7Wikipedia(b *testing.B) { benchFig7(b, "Wikipedia") }

// ---------------------------------------------------------------- Tables 1–2

func benchTable(b *testing.B, setting experiments.Setting, unequal bool, key string) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AccuracyTable(setting, unequal, scale)
		if err != nil {
			b.Fatal(err)
		}
		printBench(key, func() {
			res.Write(os.Stdout)
			loss := res.CentralizedLoss(scale.TableMs[len(scale.TableMs)-1])
			for ds, l := range loss {
				printBenchRowLoss(ds, l)
			}
		})
		// Average F at m=1 and max m across datasets as summary metrics.
		var f1, fm float64
		var n1, nm int
		maxM := scale.TableMs[len(scale.TableMs)-1]
		for _, r := range res.Rows {
			if r.M == 1 {
				f1 += r.F
				n1++
			}
			if r.M == maxM {
				fm += r.F
				nm++
			}
		}
		if n1 > 0 {
			b.ReportMetric(f1/float64(n1), "F/m=1")
		}
		if nm > 0 {
			b.ReportMetric(fm/float64(nm), "F/m=max")
		}
	}
}

func printBenchRowLoss(ds string, loss float64) {
	fmt.Printf("loss vs centralized at max m — %s: %+.3f\n", ds, loss)
}

// BenchmarkTable1a regenerates Table 1(a): content-driven, equal split.
func BenchmarkTable1a(b *testing.B) {
	benchTable(b, experiments.ContentDriven, false, "t1a")
}

// BenchmarkTable1b regenerates Table 1(b): structure/content-driven, equal split.
func BenchmarkTable1b(b *testing.B) {
	benchTable(b, experiments.HybridDriven, false, "t1b")
}

// BenchmarkTable1c regenerates Table 1(c): structure-driven, equal split.
func BenchmarkTable1c(b *testing.B) {
	benchTable(b, experiments.StructureDriven, false, "t1c")
}

// BenchmarkTable2a regenerates Table 2(a): content-driven, unequal split.
func BenchmarkTable2a(b *testing.B) {
	benchTable(b, experiments.ContentDriven, true, "t2a")
}

// BenchmarkTable2b regenerates Table 2(b): structure/content-driven, unequal split.
func BenchmarkTable2b(b *testing.B) {
	benchTable(b, experiments.HybridDriven, true, "t2b")
}

// BenchmarkTable2c regenerates Table 2(c): structure-driven, unequal split.
func BenchmarkTable2c(b *testing.B) {
	benchTable(b, experiments.StructureDriven, true, "t2c")
}

// ---------------------------------------------------------------- Fig. 8

func benchFig8(b *testing.B, ds string) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(ds, scale)
		if err != nil {
			b.Fatal(err)
		}
		printBench("fig8-"+ds, func() { res.Write(os.Stdout) })
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(float64(last.CXKTime.Microseconds()), "cxk-simμs/m=max")
		b.ReportMetric(float64(last.PKTime.Microseconds()), "pk-simμs/m=max")
		b.ReportMetric(res.AccuracyMargin(), "F-margin")
	}
}

// BenchmarkFig8DBLP regenerates Fig. 8(a): CXK vs PK runtime on DBLP,
// plus the Sect. 5.5.3 accuracy-margin comparison.
func BenchmarkFig8DBLP(b *testing.B) { benchFig8(b, "DBLP") }

// BenchmarkFig8IEEE regenerates Fig. 8(b): CXK vs PK runtime on IEEE.
func BenchmarkFig8IEEE(b *testing.B) { benchFig8(b, "IEEE") }

// ---------------------------------------------------------------- Ablations

// BenchmarkAblationGamma reproduces the γ tuning protocol of Sect. 5.1 on
// DBLP (hybrid setting, centralized).
func BenchmarkAblationGamma(b *testing.B) {
	scale := benchScale()
	gammas := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.GammaSweep("DBLP", dataset.ByHybrid, 0.5, gammas, scale, 17)
		if err != nil {
			b.Fatal(err)
		}
		printBench("abl-gamma", func() { experiments.WriteGammaSweep(os.Stdout, "DBLP", pts) })
		best := 0.0
		for _, p := range pts {
			if p.F > best {
				best = p.F
			}
		}
		b.ReportMetric(best, "best-F")
	}
}

// BenchmarkAblationGenerateReturn compares the three readings of Fig. 6's
// GenerateTreeTuple return value (DESIGN.md interpretation choices).
func BenchmarkAblationGenerateReturn(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.ReturnRuleAblation("DBLP", dataset.ByHybrid, scale, 17)
		if err != nil {
			b.Fatal(err)
		}
		printBench("abl-rule", func() { experiments.WriteRuleAblation(os.Stdout, "DBLP", pts) })
		b.ReportMetric(pts[0].F, "F-best-objective")
		b.ReportMetric(pts[2].F, "F-fig6-literal")
	}
}

// BenchmarkAblationPathCache measures the Sect. 4.3.2 tag-path pair cache.
func BenchmarkAblationPathCache(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.PathCacheAblation("DBLP", scale, 17)
		if err != nil {
			b.Fatal(err)
		}
		printBench("abl-cache", func() { experiments.WriteCacheAblation(os.Stdout, "DBLP", pts) })
		b.ReportMetric(float64(pts[0].Compute.Microseconds()), "compute-cached-μs")
		b.ReportMetric(float64(pts[1].Compute.Microseconds()), "compute-uncached-μs")
	}
}

// BenchmarkAblationWorkers sweeps the intra-peer worker count on the
// centralized DBLP run (the Relocate/representative-bound path) and
// reports the wall-clock speedup over the serial engine. The F column of
// the printed table must not move: Workers is exact, the parallel engine
// produces byte-identical output. On a single-core host the speedup
// degenerates to ~1.0; with 4+ cores expect ≥ 1.5× at 4 workers.
func BenchmarkAblationWorkers(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.WorkersAblation("DBLP", []int{1, 2, 4, 8}, scale, 17)
		if err != nil {
			b.Fatal(err)
		}
		printBench("abl-workers", func() { experiments.WriteWorkersAblation(os.Stdout, "DBLP", pts) })
		for _, p := range pts {
			if p.F != pts[0].F {
				b.Fatalf("F moved with worker count: %v at w=%d vs %v serial", p.F, p.Workers, pts[0].F)
			}
			if p.Workers == 4 {
				b.ReportMetric(p.Speedup, "speedup-4w")
			}
		}
	}
}

// ---------------------------------------------------------------- End-to-end

// BenchmarkPipelineDBLP measures the full public-API pipeline (parse is
// skipped: generation is direct) on the DBLP-like corpus, centralized.
func BenchmarkPipelineDBLP(b *testing.B) {
	gen, _ := dataset.ByName("DBLP")
	col := gen(dataset.Spec{Docs: 64, Seed: 1})
	labels, k := col.Labels(dataset.ByHybrid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus := BuildCorpus(col.Trees, CorpusOptions{Labels: labels, MaxTuplesPerTree: 32})
		res, err := Cluster(corpus, ClusterOptions{K: k, F: 0.5, Gamma: 0.8, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = Evaluate(Labels(corpus), res.Assign, k)
	}
}

// BenchmarkCostModel validates the Sect. 4.3.4 analytical cost model
// against the measured runtime curve on DBLP and prints the predicted
// optimal network size m*.
func BenchmarkCostModel(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CostModel("DBLP", scale)
		if err != nil {
			b.Fatal(err)
		}
		printBench("costmodel", func() { res.Write(os.Stdout) })
		b.ReportMetric(res.OptimalM, "predicted-m*")
	}
}

// BenchmarkAblationSemantics evaluates the Sect. 6 semantic-enrichment
// extension on a two-dialect DBLP corpus: exact Δ vs lexical tag matching
// vs dictionary+lexical chain.
func BenchmarkAblationSemantics(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.SemanticsAblation(scale, 17)
		if err != nil {
			b.Fatal(err)
		}
		printBench("abl-semantics", func() { experiments.WriteSemanticsAblation(os.Stdout, pts) })
		b.ReportMetric(pts[0].F, "F-exact")
		b.ReportMetric(pts[2].F, "F-semantic")
	}
}

// --------------------------------------------------------- Engine sweeps

// BenchmarkSweepWarmVsCold quantifies the Engine's similarity-cache reuse
// on a 3×3 f/γ grid: the cold leg runs one grid cell on a fresh Engine per
// iteration (structural and item-pair caches rebuilt from scratch), the
// warm leg runs the identical cell on an Engine pre-warmed by the full
// Engine.Sweep grid. Both legs produce byte-identical results — only the
// cache temperature differs. The legs are interleaved per iteration so
// machine drift hits both equally. Reported metrics: µs per cell for each
// leg and the cold/warm speedup (expect > 1; ~1.2× on the quick DBLP
// profile on one core, more with longer content vectors).
func BenchmarkSweepWarmVsCold(b *testing.B) {
	gen, _ := dataset.ByName("DBLP")
	col := gen(dataset.Spec{Docs: 64, Seed: experiments.DataSeed})
	corpus := col.BuildCorpus(dataset.ByHybrid, 32, 1)
	// The measured cell is the structure-driven corner of the grid: Eq. 1
	// degenerates to the structural term there, so the warm engine's memo
	// replaces the whole per-pair computation and the reuse win is at its
	// cleanest. The grid still spans hybrid settings, as a real sweep would.
	cell := ClusterOptions{K: col.K(dataset.ByHybrid), F: 1.0, Gamma: 0.7, Seed: 17, Workers: 1}
	grid := SweepSpec{
		Base:        cell,
		Fs:          []float64{0.5, 0.7, 1.0},
		Gammas:      []float64{0.6, 0.7, 0.8},
		Concurrency: 1,
	}

	warmEng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warmEng.Sweep(context.Background(), grid); err != nil {
		b.Fatal(err) // pre-warm: the full grid fills the shared caches
	}

	var cold, warm time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coldEng, err := NewEngine(corpus, EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if _, err := coldEng.Cluster(context.Background(), cell); err != nil {
			b.Fatal(err)
		}
		cold += time.Since(t0)

		t1 := time.Now()
		if _, err := warmEng.Cluster(context.Background(), cell); err != nil {
			b.Fatal(err)
		}
		warm += time.Since(t1)
	}

	b.ReportMetric(float64(cold.Microseconds())/float64(b.N), "cold-µs/cell")
	b.ReportMetric(float64(warm.Microseconds())/float64(b.N), "warm-µs/cell")
	if warm > 0 {
		b.ReportMetric(float64(cold)/float64(warm), "speedup-warm")
	}
	b.ReportMetric(float64(warmEng.CachedPathSims()), "cached-pairs")
}

// ------------------------------------------------------------- Ingestion

// benchIngest streams a rendered DBLP corpus from disk through the full
// ingestion pipeline and reports throughput (docs/s) and allocations per
// document — the tracked perf surface for the streaming builder.
func benchIngest(b *testing.B, workers int) {
	scale := benchScale()
	col := dataset.DBLP(dataset.Spec{Docs: scale.Docs["DBLP"], Seed: experiments.DataSeed})
	dir := b.TempDir()
	for i, tree := range col.Trees {
		p := filepath.Join(dir, fmt.Sprintf("dblp-%04d.xml", i))
		f, err := os.Create(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := xmltree.Render(f, tree); err != nil {
			f.Close()
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var docs, txns int
	var secs float64
	for i := 0; i < b.N; i++ {
		src, err := corpus.Dir(dir)
		if err != nil {
			b.Fatal(err)
		}
		c, stats, err := corpus.Build(src, corpus.Options{
			Tuple:   tuple.Options{MaxTuplesPerTree: scale.MaxTuples},
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		docs = stats.Docs
		txns = len(c.Transactions)
		secs += stats.Duration.Seconds()
	}
	if secs > 0 {
		b.ReportMetric(float64(docs*b.N)/secs, "docs/s")
	}
	b.ReportMetric(float64(txns), "txns")
}

// BenchmarkIngest tracks streaming ingestion throughput on the serial path.
func BenchmarkIngest(b *testing.B) { benchIngest(b, 1) }

// BenchmarkIngestParallel tracks the parallel parse/extract path (one
// worker per CPU); the resulting corpus is byte-identical to the serial one.
func BenchmarkIngestParallel(b *testing.B) { benchIngest(b, 0) }
