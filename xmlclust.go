// Package xmlclust is a Go implementation of collaborative distributed
// clustering of XML documents, reproducing S. Greco, F. Gullo, G. Ponti and
// A. Tagarelli, "Collaborative clustering of XML documents" (JCSS 77, 2011;
// abridged version at the ICPP 2009 Distributed XML Processing workshop).
//
// The pipeline turns XML documents into labeled rooted trees, decomposes
// them into tree tuples (maximal subtrees with unambiguous path answers),
// models the tuples as transactions over ⟨path, answer⟩ items, weights
// textual content with the ttf.itf scheme, and clusters the transactions
// with CXK-means: a centroid-based partitional algorithm in which every
// peer of a P2P network clusters its local data and exchanges cluster
// representatives to converge on a global solution collaboratively.
//
// # Engine and jobs
//
// The clustering surface is the Engine: a reusable handle bound to one
// corpus that owns the interning tables and a params-keyed similarity
// cache. Jobs run on it with a context (cancellation aborts at clean round
// boundaries with ErrCanceled) and can stream progress events:
//
//	src, err := xmlclust.OpenSource("corpus/")       // dir, tar[.gz] or file
//	corpus, stats, err := xmlclust.BuildCorpusFromSource(src, xmlclust.CorpusOptions{})
//	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
//	res, err := eng.Cluster(ctx, xmlclust.ClusterOptions{
//		K: 8, F: 0.5, Gamma: 0.7, Peers: 4,
//		Events: func(ev xmlclust.Event) { ... }, // rounds, objective, traffic
//	})
//	for i, cl := range res.Assign { ... }
//
// Because the structural tag-path similarities of Eq. 3 are independent of
// (f, γ), every job on one Engine shares a single warm structural cache;
// parameter sweeps — the paper's evaluation protocol — fan a whole grid
// over it with Engine.Sweep:
//
//	cells, err := eng.Sweep(ctx, xmlclust.SweepSpec{
//		Base:   xmlclust.ClusterOptions{K: 8, Seed: 1},
//		Fs:     []float64{0.1, 0.3, 0.5, 0.7, 0.9},
//		Gammas: []float64{0.6, 0.7, 0.8},
//	})
//
// The deprecated free functions Cluster and ClusterDistributed remain as
// thin wrappers over a throwaway Engine and produce byte-identical results.
//
// # Ingestion
//
// Ingestion is a bounded-memory pipeline: documents stream out of the
// Source through parallel parse/extract workers into an index-ordered
// merge, so only O(IngestWorkers) parsed trees exist at any instant and
// the corpus is byte-identical for any worker count. Trees already in
// memory go through the batch form (ParseFiles + BuildCorpus), which
// yields the identical corpus for the same documents in the same order.
//
// The internal packages implement the substrates (tree model, tuple
// extraction, transactional model, similarity, representatives, the P2P
// transports and the PK-means baseline); this package is the stable
// surface.
package xmlclust

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/corpus"
	"xmlclust/internal/eval"
	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// Tree is a parsed XML document in the paper's labeled-rooted-tree model.
type Tree = xmltree.Tree

// Corpus is a preprocessed collection: tree tuples modeled as transactions
// with ttf.itf-weighted content vectors.
type Corpus = txn.Corpus

// Transaction is the item set of one tree tuple.
type Transaction = txn.Transaction

// TrashCluster is the assignment value of the (k+1)-th cluster that
// collects transactions with zero similarity to every representative.
const TrashCluster = cluster.TrashCluster

// ParseOptions re-exports the XML → tree mapping knobs.
type ParseOptions = xmltree.ParseOptions

// Parse reads one XML document.
func Parse(r io.Reader, opts ParseOptions) (*Tree, error) {
	return xmltree.Parse(r, opts)
}

// ParseFile parses one XML file with the default options.
func ParseFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := xmltree.Parse(f, xmltree.DefaultParseOptions())
	if err != nil {
		return nil, fmt.Errorf("xmlclust: %s: %w", path, err)
	}
	t.Name = path
	return t, nil
}

// ParseFiles parses a list of XML files.
func ParseFiles(paths []string) ([]*Tree, error) {
	trees := make([]*Tree, 0, len(paths))
	for _, p := range paths {
		t, err := ParseFile(p)
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
	return trees, nil
}

// ParseString parses an XML document held in a string with default options.
func ParseString(s string) (*Tree, error) {
	return xmltree.ParseString(s, xmltree.DefaultParseOptions())
}

// CorpusOptions controls preprocessing.
type CorpusOptions struct {
	// MaxTuplesPerTree caps tree tuple extraction per document
	// (0 = tuple.DefaultMaxTuplesPerTree). Text-centric documents can have
	// combinatorially many tuples.
	MaxTuplesPerTree int
	// Labels optionally provides per-document ground-truth classes for
	// evaluation; transactions inherit their document's label. Sources that
	// carry their own labels (TreeSource) take precedence on the streaming
	// path.
	Labels []int
	// Parse maps raw XML onto the tree model on the streaming path; nil
	// selects the default options (attributes kept, text concatenated).
	Parse *ParseOptions
	// IngestWorkers is the number of parse/extract workers the streaming
	// path fans out over (0 or negative = one per CPU, 1 = serial). The
	// corpus is byte-identical for any value.
	IngestWorkers int
}

// BuildCorpus extracts tree tuples, builds the transactional model and
// computes ttf.itf content vectors — the batch entry point for trees
// already in memory. For collections too large to hold as parsed trees,
// use BuildCorpusFromSource.
func BuildCorpus(trees []*Tree, opts CorpusOptions) *Corpus {
	c := txn.Build(trees, txn.BuildOptions{
		Tuple:  tuple.Options{MaxTuplesPerTree: opts.MaxTuplesPerTree},
		Labels: opts.Labels,
	})
	weighting.Apply(c)
	return c
}

// Source yields the documents of a corpus one at a time (see DirSource,
// FileSource, TarSource, TreeSource, OpenSource, MultiSource).
type Source = corpus.Source

// Document is one unit yielded by a Source: raw XML or a pre-parsed tree.
type Document = corpus.Document

// IngestStats describes one streaming ingestion run: corpus sizes,
// throughput (DocsPerSec), truncation and the peak number of parsed
// documents queued in the reorder buffer (bounded by the worker window,
// never by the corpus size).
type IngestStats = corpus.Stats

// DirSource walks root recursively and yields every *.xml file in lexical
// path order. It fails when the walk finds no XML documents.
func DirSource(root string) (Source, error) { return corpus.Dir(root) }

// FileSource yields an explicit list of XML files in the given order.
func FileSource(paths ...string) Source { return corpus.Files(paths...) }

// TarSource yields the *.xml entries of a tar or tar.gz stream in archive
// order; compression is auto-detected. name labels errors.
func TarSource(r io.Reader, name string) (Source, error) { return corpus.Tar(r, name) }

// TreeSource yields already-parsed trees with optional per-document labels
// (nil or short labels yield −1) — the adapter for in-process generators.
func TreeSource(name string, trees []*Tree, labels []int) Source {
	return corpus.Trees(name, trees, labels)
}

// MultiSource concatenates sources in order.
func MultiSource(srcs ...Source) Source { return corpus.Multi(srcs...) }

// OpenSource auto-detects what path holds — a directory (recursive walk),
// a tar/tar.gz archive, or a single XML document — and returns the
// matching source.
func OpenSource(path string) (Source, error) { return corpus.Open(path) }

// BuildCorpusFromSource streams every document of src through the full
// preprocessing pipeline — parse, tuple extraction, transactional model,
// ttf.itf weighting — holding only O(IngestWorkers) parsed trees in memory
// at any instant, so corpus size is bounded by the transactional model and
// not by the XML. Parsing and extraction fan out over
// CorpusOptions.IngestWorkers goroutines behind an index-ordered merge:
// the corpus is byte-identical to BuildCorpus on the same documents in the
// same order, for any worker count.
func BuildCorpusFromSource(src Source, opts CorpusOptions) (*Corpus, IngestStats, error) {
	return corpus.Build(src, corpus.Options{
		Tuple:   tuple.Options{MaxTuplesPerTree: opts.MaxTuplesPerTree},
		Parse:   opts.Parse,
		Labels:  opts.Labels,
		Workers: opts.IngestWorkers,
	})
}

// OpenCorpus loads a preprocessed corpus gob (as written by SaveCorpus /
// `cxkcluster -save`), or — when path holds a directory, tar[.gz] archive
// or XML document instead — builds the corpus on the fly via the streaming
// ingestion pipeline. Deployments can therefore point cxkpeer straight at
// raw data without a separate preprocessing step. The returned stats are
// zero when a saved corpus was loaded.
func OpenCorpus(path string, opts CorpusOptions) (*Corpus, IngestStats, error) {
	kind, err := corpus.Detect(path)
	if err != nil {
		return nil, IngestStats{}, err
	}
	if kind == corpus.KindUnknown {
		f, err := os.Open(path)
		if err != nil {
			return nil, IngestStats{}, err
		}
		defer f.Close()
		c, err := txn.Load(f)
		if err != nil {
			return nil, IngestStats{}, fmt.Errorf("xmlclust: %s is neither XML data nor a saved corpus: %w", path, err)
		}
		return c, IngestStats{}, nil
	}
	src, err := corpus.Open(path)
	if err != nil {
		return nil, IngestStats{}, err
	}
	return BuildCorpusFromSource(src, opts)
}

// Algorithm selects the clustering algorithm.
type Algorithm int

const (
	// CXKMeans is the paper's collaborative distributed algorithm.
	CXKMeans Algorithm = iota
	// PKMeans is the non-collaborative parallel K-means baseline.
	PKMeans
)

// RepIndexMode selects whether assignment scans use the inverted
// representative index (sub-linear candidate generation with exact
// bound-based pruning). The index never changes a single assignment —
// candidates are evaluated with the same exact kernel and ties still
// resolve to the lowest representative index — so the only observable
// difference is wall time and the IndexSkipped/IndexCandidates counters.
type RepIndexMode int

const (
	// RepIndexAuto (the zero value) enables the index; it self-disables
	// where its premises fail (γ = 0, semantic tag matchers), falling back
	// to the flat branch-and-bound scan.
	RepIndexAuto RepIndexMode = iota
	// RepIndexOn behaves like RepIndexAuto (the index always self-disables
	// where it would be unsound); it exists to state the intent explicitly.
	RepIndexOn
	// RepIndexOff forces the flat scan over all representatives.
	RepIndexOff
)

// enabled reports whether the mode asks for the index.
func (m RepIndexMode) enabled() bool { return m != RepIndexOff }

// DeltaRoundsMode selects whether runs carry the convergence-aware delta
// caches across rounds: unchanged cluster memberships reuse their memoized
// representatives, documents whose cached best cluster provably still wins
// skip the relocation scan, and (CXK-means) unchanged local representatives
// travel between peers as digest markers instead of full wire transactions.
// The delta engine never changes a single assignment or representative — the
// only observable differences are wall time, wire bytes and the
// RepsReused/DocsSkipped/DeltaRepBytes counters.
type DeltaRoundsMode int

const (
	// DeltaRoundsAuto (the zero value) enables the delta engine.
	DeltaRoundsAuto DeltaRoundsMode = iota
	// DeltaRoundsOn behaves like DeltaRoundsAuto; it exists to state the
	// intent explicitly.
	DeltaRoundsOn
	// DeltaRoundsOff recomputes every round from scratch and ships every
	// representative in full.
	DeltaRoundsOff
)

// enabled reports whether the mode asks for the delta engine.
func (m DeltaRoundsMode) enabled() bool { return m != DeltaRoundsOff }

// ClusterOptions configures a clustering run.
type ClusterOptions struct {
	// K is the number of clusters (required).
	K int
	// F ∈ [0,1] balances structural vs content similarity (Eq. 1):
	// [0,0.3] content-driven, [0.4,0.6] hybrid, [0.7,1] structure-driven.
	F float64
	// Gamma ∈ [0,1] is the γ-matching threshold (Eq. 2).
	Gamma float64
	// Peers is the number of P2P nodes; 1 = centralized (default 1).
	Peers int
	// Workers bounds the goroutines each peer uses for its local
	// similarity-heavy loops (relocation, item ranking, representative
	// refinement). 0 means one worker per CPU; 1 forces the serial path;
	// negative values are rejected with an *OptionsError. For a fixed Seed
	// the clustering output is byte-identical for every legal Workers
	// value — only the wall time changes.
	Workers int
	// UnequalSplit distributes data in the paper's skewed scenario (half
	// the peers hold twice the data).
	UnequalSplit bool
	// Seed makes runs reproducible.
	Seed int64
	// IndexReps selects the inverted representative index for the
	// relocation scans (default RepIndexAuto = on). Assignments are
	// byte-identical in every mode; see RepIndexMode.
	IndexReps RepIndexMode
	// DeltaRounds selects the cross-round delta engine (default
	// DeltaRoundsAuto = on). Assignments and representatives are
	// byte-identical in every mode; see DeltaRoundsMode.
	DeltaRounds DeltaRoundsMode
	// Algorithm selects CXK-means (default) or the PK-means baseline.
	Algorithm Algorithm
	// UseTCP runs the peers over loopback TCP instead of in-process
	// channels.
	UseTCP bool
	// MaxRounds bounds the collaborative loop (0 = default; negative values
	// are rejected with an *OptionsError).
	MaxRounds int
	// RoundTimeout bounds every blocking receive of each peer's session;
	// a peer that waits longer fails the run instead of hanging on a dead
	// neighbour. 0 disables the deadline (the in-process default); negative
	// values are rejected with an *OptionsError. (DistributedOptions keeps
	// its distinct negative-means-no-deadline convention.)
	RoundTimeout time.Duration
	// Events, when non-nil, receives typed progress events while the job
	// runs: per-peer RoundStart/RoundEnd (with the peer's local objective),
	// PhaseChange and RepsExchanged, plus one run-level Done (Peer == -1)
	// with the final round count, total traffic and elapsed time. Calls are
	// serialized — the callback never runs concurrently with itself — but
	// arrive from the job's goroutines, not the caller's. Enabling events
	// adds one objective evaluation per peer round.
	Events func(Event)
}

// Result is a clustering outcome.
type Result struct {
	// Assign maps transaction index → cluster in [0,K) or TrashCluster.
	Assign []int
	// Reps holds the final global representatives.
	Reps []*Transaction
	// Rounds is the number of collaborative rounds executed.
	Rounds int
	// WallTime is the end-to-end duration.
	WallTime time.Duration
	// SimulatedTime estimates the runtime on the paper's testbed (peers on
	// a GigaBit LAN) from per-peer compute measurements and the traffic
	// model.
	SimulatedTime time.Duration
	// TrafficBytes and TrafficMsgs total the modeled network load.
	TrafficBytes int64
	TrafficMsgs  int64
	// K echoes the cluster count.
	K int
	// PrunedRows counts the match-matrix rows (≈ item-similarity
	// evaluations × representative size) the assignment path skipped via
	// the similarity kernel's exact branch-and-bound — work saved without
	// changing any assignment. ScratchReuses counts kernel invocations that
	// ran on a fully warm, zero-allocation Scratch. Both are deltas of the
	// job's similarity context; jobs of one Sweep that share a (F, Gamma)
	// context and run concurrently may attribute overlap to one cell, but
	// the totals across cells are exact.
	PrunedRows    int64
	ScratchReuses int64
	// IndexCandidates and IndexSkipped are the representative-index deltas
	// of this job: representatives the index-guided relocation actually
	// evaluated with the kernel versus representatives it proved could not
	// win and never touched. Both are zero when IndexReps is RepIndexOff or
	// the index self-disabled. The same concurrency attribution caveat as
	// PrunedRows applies.
	IndexCandidates int64
	IndexSkipped    int64
	// RepsReused, DocsSkipped and DeltaRepBytes are the delta-round deltas of
	// this job: representatives returned verbatim from the cross-round memo
	// (local and global), documents whose relocation was decided from the
	// cached anchor with zero kernel evaluations, and modeled wire bytes
	// saved by shipping unchanged-representative digest markers. All zero
	// when DeltaRounds is DeltaRoundsOff. The same concurrency attribution
	// caveat as PrunedRows applies.
	RepsReused    int64
	DocsSkipped   int64
	DeltaRepBytes int64
}

// Cluster runs one clustering job on a throwaway Engine and blocks until
// it completes. The result is byte-identical to Engine.Cluster with the
// same options and seed.
//
// Deprecated: build an Engine with NewEngine and call Engine.Cluster. A
// shared Engine reuses the similarity caches across runs (sweeps get
// measurably faster) and takes a context.Context for cancellation; this
// wrapper rebuilds everything per call and cannot be canceled.
func Cluster(corpus *Corpus, opts ClusterOptions) (*Result, error) {
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		return nil, err
	}
	return eng.Cluster(context.Background(), opts)
}

// DefaultRoundTimeout is the per-round receive deadline distributed peer
// processes use when DistributedOptions.RoundTimeout is zero. A real
// deployment must not hang forever on a dead neighbour.
const DefaultRoundTimeout = 60 * time.Second

// DefaultStartupTimeout bounds a distributed peer's wait for the
// coordinator's startup message. Peer processes boot in any order, so this
// is much longer than the per-round deadline.
const DefaultStartupTimeout = 10 * time.Minute

// DistributedOptions configures one peer process of a multi-process
// CXK-means deployment. Every process must be started with the same corpus,
// K, F, Gamma, Seed, MaxRounds and split options — the partition and
// per-peer seeds are derived deterministically from them, so the cluster
// of processes reproduces the in-process run byte-identically.
type DistributedOptions struct {
	// K is the number of clusters (required).
	K int
	// F and Gamma are the similarity knobs (see ClusterOptions).
	F     float64
	Gamma float64
	// ID is this process's peer id in [0, len(PeerAddrs)). Peer 0 is the
	// coordinator: it plays node N0 and collects the final assignment.
	ID int
	// PeerAddrs is the shared peer-id→address table (host:port per peer).
	PeerAddrs []string
	// Listen overrides the local listen address (default PeerAddrs[ID]);
	// useful when peers bind 0.0.0.0 but advertise a routable host.
	Listen string
	// Workers bounds intra-peer parallelism (see ClusterOptions.Workers).
	Workers int
	// UnequalSplit selects the paper's skewed partitioning scenario.
	UnequalSplit bool
	// Seed makes the run reproducible (and must match across processes).
	Seed int64
	// IndexReps selects the inverted representative index for this peer's
	// relocation scans (default RepIndexAuto = on). Purely local to the
	// process — it changes no assignment and no wire message, so peers may
	// mix modes freely.
	IndexReps RepIndexMode
	// DeltaRounds selects the cross-round delta engine (default
	// DeltaRoundsAuto = on). Unlike IndexReps it changes the wire protocol
	// (unchanged representatives travel as digest markers), so every process
	// of a deployment must agree — a mismatch fails fast at startup with a
	// configuration error instead of computing silently wrong refinements.
	DeltaRounds DeltaRoundsMode
	// MaxRounds bounds the collaborative loop (0 = default; negative values
	// are rejected with an *OptionsError).
	MaxRounds int
	// RoundTimeout bounds every blocking receive (0 = DefaultRoundTimeout,
	// negative = no deadline).
	RoundTimeout time.Duration
	// StartupTimeout bounds the wait for the coordinator's startup
	// message — peers may boot long before peer 0 does
	// (0 = DefaultStartupTimeout, negative = no deadline).
	StartupTimeout time.Duration
	// DialTimeout bounds how long sends wait for a peer's listener to come
	// up (0 = p2p default; peers boot independently).
	DialTimeout time.Duration
	// Events, when non-nil, receives this peer's progress events (see
	// ClusterOptions.Events; distributed runs emit only peer-level events).
	Events func(Event)

	// CheckpointDir enables the elastic peer fabric: at every
	// CheckpointEvery-th round boundary the peer persists its session state
	// here (and replicates it to the coordinator), so a crashed peer can be
	// replaced mid-session — the coordinator rolls every survivor back to
	// the last common checkpoint and the cluster replays to an outcome
	// byte-identical to an uninterrupted run. Empty disables the fabric
	// (the pre-fabric behavior: any peer failure fails the session).
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in rounds (0 = every round).
	CheckpointEvery int
	// Resume restarts this peer from its own CheckpointDir after a crash:
	// the peer announces itself to the coordinator and restores the
	// rollback barrier round from local storage. The local store must hold
	// at least one checkpoint of this exact run (ErrCheckpointMismatch /
	// ErrNoCheckpoint otherwise). Mutually exclusive with Join; invalid on
	// peer 0 (coordinator death is not recoverable).
	Resume bool
	// Join lets a fresh process (no usable checkpoint store) take over this
	// peer's slot: the coordinator streams the slot's replicated state plus
	// its partition slice, which is verified against the locally loaded
	// corpus before the session resumes. Mutually exclusive with Resume.
	Join bool
	// RecoveryWindows is how many extra round-timeout windows a stalled
	// peer grants recovery before failing with ErrRecoveryTimeout
	// (0 = default 2: recovery must complete within 2× RoundTimeout).
	RecoveryWindows int
	// Leave, when non-nil, requests a graceful departure: after it is
	// closed (or receives), the peer hands its state to the coordinator at
	// the next checkpoint boundary and the call returns ErrLeft. Requires
	// the fabric (CheckpointDir).
	Leave <-chan struct{}
	// DebugAddr, when non-empty, serves the fabric counters over HTTP for
	// the session's lifetime (GET /v1/stats, mirroring cxkserve): rounds,
	// checkpoints written/restored, bytes rebalanced, current epoch,
	// last-heartbeat age. Requires the fabric (CheckpointDir).
	DebugAddr string
	// DebugPprof additionally mounts the net/http/pprof handlers on the
	// DebugAddr server (/debug/pprof/...), so a live round loop can be
	// CPU/heap-profiled without redeploying. Requires DebugAddr.
	DebugPprof bool
	// FailpointRound is a chaos-engineering failpoint for recovery drills:
	// when > 0, the process kills itself (SIGKILL, uncatchable — exactly
	// like an external kill) on reaching this round boundary, before the
	// boundary checkpoint is written. Wall-clock kill schedules race the
	// session (rounds complete in milliseconds); the failpoint makes "die
	// mid-session at round N" deterministic, so the recovery-equivalence
	// e2e can gate on it in CI. Requires the fabric (CheckpointDir); zero
	// in production.
	FailpointRound int
}

// DistributedResult is the outcome of one peer process.
type DistributedResult struct {
	// ID echoes the peer id.
	ID int
	// LocalAssign maps this peer's local transaction order → cluster.
	LocalAssign []int
	// Assign is the corpus-wide assignment (transaction index → cluster);
	// populated on the coordinator (ID 0) only.
	Assign []int
	// Reps holds the final global representatives as seen by this peer.
	Reps []*Transaction
	// Rounds is the number of collaborative rounds executed.
	Rounds int
	// WallTime is the end-to-end duration of this process's session.
	WallTime time.Duration
	// RepsDigest is a canonical fingerprint of Reps (FNV-1a over sorted
	// flattened raw item ids): equal digests across runs or processes of
	// the same corpus mean identical final representatives. The recovery
	// equivalence gate compares exactly this.
	RepsDigest uint64
}

// ClusterDistributed runs ONE peer of a multi-process CXK-means cluster on
// a throwaway Engine (see Engine.ClusterDistributed and cmd/cxkpeer).
//
// Deprecated: build an Engine with NewEngine and call
// Engine.ClusterDistributed — it takes a context.Context, so a daemon can
// shut the session down gracefully on SIGINT. This wrapper cannot be
// canceled.
func ClusterDistributed(corpus *Corpus, opts DistributedOptions) (*DistributedResult, error) {
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		return nil, err
	}
	return eng.ClusterDistributed(context.Background(), opts)
}

// DocumentClusters aggregates a per-transaction assignment to per-document
// clusters by majority vote (ties to the lower cluster id; documents whose
// transactions all landed in the trash map to TrashCluster). Every document
// of the corpus appears in the result: transactions beyond a short assign
// slice cast no votes, so a document wholly outside the slice follows the
// all-trash rule and maps to TrashCluster instead of being dropped.
func DocumentClusters(corpus *Corpus, assign []int) map[int]int {
	votes := map[int]map[int]int{}
	for i, tr := range corpus.Transactions {
		if votes[tr.Doc] == nil {
			votes[tr.Doc] = map[int]int{}
		}
		if i >= len(assign) {
			continue
		}
		votes[tr.Doc][assign[i]]++
	}
	out := make(map[int]int, len(votes))
	for doc, v := range votes {
		out[doc] = majorityFromVotes(v)
	}
	return out
}

// MajorityCluster reduces the per-transaction assignment of ONE document to
// a document-level cluster by majority vote: ties resolve to the lower
// cluster id, trash votes never outvote a real cluster, and an empty or
// all-trash assignment yields TrashCluster. It is the same vote
// DocumentClusters applies per document, exposed for online classification
// where a single document's transactions are assigned at a time.
func MajorityCluster(assign []int) int {
	votes := make(map[int]int, 4)
	for _, cl := range assign {
		votes[cl]++
	}
	return majorityFromVotes(votes)
}

// majorityFromVotes picks the non-trash cluster with the most votes, ties
// to the lower id; TrashCluster when no real cluster got any vote. The scan
// is order-independent, so map iteration order cannot leak into results.
func majorityFromVotes(votes map[int]int) int {
	best, bestN := TrashCluster, -1
	for cl, n := range votes {
		if cl == TrashCluster {
			continue
		}
		if n > bestN || (n == bestN && cl < best) {
			best, bestN = cl, n
		}
	}
	return best
}

// Scores bundles the cluster validity measures of Sect. 5.3.
type Scores struct {
	FMeasure float64
	Purity   float64
	NMI      float64
	Trash    float64 // fraction of labeled transactions left unclustered
}

// Evaluate scores an assignment against per-transaction ground truth.
func Evaluate(labels, assign []int, k int) Scores {
	c := eval.NewContingency(labels, assign, k)
	return Scores{
		FMeasure: c.FMeasure(),
		Purity:   c.Purity(),
		NMI:      c.NMI(),
		Trash:    eval.TrashFraction(labels, assign),
	}
}

// Labels extracts the per-transaction ground truth of a corpus built with
// CorpusOptions.Labels.
func Labels(corpus *Corpus) []int {
	out := make([]int, len(corpus.Transactions))
	for i, tr := range corpus.Transactions {
		out[i] = tr.Label
	}
	return out
}

// SaveCorpus serializes a preprocessed corpus so that parsing, tuple
// extraction and weighting can be done once and reused across runs.
func SaveCorpus(w io.Writer, corpus *Corpus) error { return corpus.Save(w) }

// LoadCorpus restores a corpus written by SaveCorpus. The restored corpus
// carries no source trees; it is ready for Cluster.
func LoadCorpus(r io.Reader) (*Corpus, error) { return txn.Load(r) }
