package xmlclust

import (
	"context"
	"fmt"
	"testing"

	"xmlclust/internal/dataset"
)

// deltaTestCorpus builds a generated corpus big enough for several
// collaborative rounds — the regime the cross-round delta engine exists
// for. sampleCorpus converges too fast to exercise the caches.
func deltaTestCorpus(t testing.TB) (*Corpus, int) {
	t.Helper()
	gen, ok := dataset.ByName("DBLP")
	if !ok {
		t.Fatal("DBLP generator missing")
	}
	col := gen(dataset.Spec{Docs: 20, Seed: 99})
	return col.BuildCorpus(dataset.ByHybrid, 24, 1), col.K(dataset.ByHybrid)
}

// assertSameClustering compares two public Results byte for byte:
// assignments, round counts and representative item sequences.
func assertSameClustering(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Errorf("%s: rounds %d, want %d", label, got.Rounds, want.Rounds)
	}
	if len(got.Assign) != len(want.Assign) {
		t.Fatalf("%s: assign length %d, want %d", label, len(got.Assign), len(want.Assign))
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("%s: assignment diverges at transaction %d: %d != %d",
				label, i, got.Assign[i], want.Assign[i])
		}
	}
	if len(got.Reps) != len(want.Reps) {
		t.Fatalf("%s: %d representatives, want %d", label, len(got.Reps), len(want.Reps))
	}
	for j := range want.Reps {
		a, b := want.Reps[j], got.Reps[j]
		if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
			t.Errorf("%s: representative %d diverges", label, j)
		}
	}
}

// TestClusterDeltaModesIdentical is the public-API byte-identity gate of
// the delta-round engine: Engine.Cluster with DeltaRounds on and off must
// agree exactly — assignments, rounds, representatives — for both
// algorithms (collaborative XK-means and the PK-means baseline) and for
// centralized as well as multi-peer runs.
func TestClusterDeltaModesIdentical(t *testing.T) {
	corpus, k := deltaTestCorpus(t)
	eng, err := NewEngine(corpus, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{CXKMeans, PKMeans} {
		for _, peers := range []int{1, 3} {
			base := ClusterOptions{
				K: k, F: 0.5, Gamma: 0.7, Peers: peers, Seed: 9, Algorithm: alg,
			}
			off := base
			off.DeltaRounds = DeltaRoundsOff
			want, err := eng.Cluster(ctx, off)
			if err != nil {
				t.Fatal(err)
			}
			if want.RepsReused != 0 || want.DocsSkipped != 0 || want.DeltaRepBytes != 0 {
				t.Errorf("alg %v peers %d: delta-off run reported delta counters (%d, %d, %d)",
					alg, peers, want.RepsReused, want.DocsSkipped, want.DeltaRepBytes)
			}
			on := base
			on.DeltaRounds = DeltaRoundsOn
			got, err := eng.Cluster(ctx, on)
			if err != nil {
				t.Fatal(err)
			}
			assertSameClustering(t, fmt.Sprintf("alg %v peers %d", alg, peers), want, got)
			if got.Rounds >= 3 && got.RepsReused+got.DocsSkipped == 0 {
				t.Errorf("alg %v peers %d: %d-round delta run never hit a cache",
					alg, peers, got.Rounds)
			}
			if alg == CXKMeans && peers > 1 && got.Rounds >= 3 {
				if got.DeltaRepBytes <= 0 {
					t.Errorf("peers %d: no representative shipped as a digest marker", peers)
				}
				if got.TrafficBytes >= want.TrafficBytes {
					t.Errorf("peers %d: delta exchange did not reduce modeled traffic (%d B vs %d B)",
						peers, got.TrafficBytes, want.TrafficBytes)
				}
			}
		}
	}
}

// TestClusterDeltaDefaultOn pins the zero value: ClusterOptions without an
// explicit DeltaRounds mode runs the delta engine (DeltaRoundsAuto), and
// the legacy Cluster wrapper inherits the same behavior with identical
// output to an explicit DeltaRoundsOff run.
func TestClusterDeltaDefaultOn(t *testing.T) {
	corpus, k := deltaTestCorpus(t)
	opts := ClusterOptions{K: k, F: 0.5, Gamma: 0.7, Seed: 9}
	def, err := Cluster(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DeltaRounds = DeltaRoundsOff
	off, err := Cluster(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameClustering(t, "default vs off", off, def)
	if def.Rounds >= 3 && def.RepsReused+def.DocsSkipped == 0 {
		t.Errorf("default-mode %d-round run never hit a delta cache: the default is not on", def.Rounds)
	}
}
